(* Dynamic partial-order reduction: correctness of the engine itself
   (agreement with the naive enumerator, no duplicate traces, pruning), and
   the DPOR-powered exhaustive model-checking suites that the naive
   explorer cannot finish — Algorithm A, the CAS-loop register, the f-array
   counter and the single-writer f-array snapshot at n = 3. *)

open Memsim

(* {1 Helpers} *)

let dpor_explore ?max_schedules ?max_events ~session ~n ~make_body ~check () =
  let failures = ref 0 in
  let stats =
    Dpor.run ?max_schedules ?max_events session ~n ~make_body
      ~on_complete:(fun trace ->
        if not (check trace) then incr failures;
        true)
      ()
  in
  (stats, !failures)

let naive_explore ~session ~n ~make_body ~check () =
  let failures = ref 0 in
  let stats =
    Explore.run session ~n ~make_body
      ~on_complete:(fun trace ->
        if not (check trace) then incr failures;
        true)
      ()
  in
  (stats, !failures)

let lin_maxreg ~n =
  Linearize.Checker.check_trace (module Linearize.Spec.Max_register) ~n

let lin_counter ~n =
  Linearize.Checker.check_trace (module Linearize.Spec.Counter) ~n

let lin_snapshot ~n =
  Linearize.Checker.check_trace (module Linearize.Spec.Snapshot) ~n

(* {1 Engine basics} *)

(* Two processes on disjoint objects: every interleaving is equivalent, so
   DPOR must visit exactly one schedule where the naive explorer visits
   C(4,2) = 6. *)
let test_disjoint_collapses () =
  let session = Session.create () in
  let a = Session.alloc session ~name:"a" (Simval.Int 0) in
  let b = Session.alloc session ~name:"b" (Simval.Int 0) in
  let make_body pid () =
    let obj = if pid = 0 then a else b in
    ignore (Session.mem_op session obj Event.Read);
    ignore (Session.mem_op session obj (Event.Write (Simval.Int pid)))
  in
  let dstats, _ =
    dpor_explore ~session ~n:2 ~make_body ~check:(fun _ -> true) ()
  in
  let nstats, _ =
    naive_explore ~session ~n:2 ~make_body ~check:(fun _ -> true) ()
  in
  Alcotest.(check int) "naive visits all 6 interleavings" 6 nstats.Explore.explored;
  Alcotest.(check int) "dpor visits exactly 1" 1 dstats.Dpor.explored;
  Alcotest.(check bool) "not truncated" false dstats.Dpor.truncated

(* Two conflicting writes: both orders are inequivalent and must both be
   visited. *)
let test_conflict_keeps_both_orders () =
  let session = Session.create () in
  let a = Session.alloc session ~name:"a" (Simval.Int 0) in
  let make_body pid () =
    ignore (Session.mem_op session a (Event.Write (Simval.Int pid)))
  in
  let dstats, _ =
    dpor_explore ~session ~n:2 ~make_body ~check:(fun _ -> true) ()
  in
  Alcotest.(check int) "both orders" 2 dstats.Dpor.explored

(* Sleep sets guarantee no complete schedule is delivered twice. *)
let test_no_duplicate_schedules () =
  let session = Session.create () in
  let reg =
    Harness.Annotate.max_register session
      (Harness.Instances.maxreg_sim session ~n:3 ~bound:8
         Harness.Instances.Cas_maxreg)
  in
  let make_body pid () =
    match pid with
    | 0 -> reg.write_max ~pid 2
    | 1 -> reg.write_max ~pid 5
    | _ -> ignore (reg.read_max ())
  in
  let seen = Hashtbl.create 64 in
  let dups = ref 0 in
  ignore
    (Dpor.run session ~n:3 ~make_body
       ~on_complete:(fun trace ->
         let s = Trace.schedule trace in
         if Hashtbl.mem seen s then incr dups else Hashtbl.add seen s ();
         true)
       ());
  Alcotest.(check int) "no schedule delivered twice" 0 !dups

(* {1 Equivalence with the naive explorer (qcheck)} *)

(* Random straight-line programs: 3 processes, up to 4 events each, over 2
   shared objects.  DPOR visits a subset of the naive explorer's schedules
   but must reach exactly the same set of final store states. *)

type op = { kind : int; obj : int; a : int; b : int }

let prim_of_op op =
  match op.kind with
  | 0 -> Event.Read
  | 1 -> Event.Write (Simval.Int op.a)
  | _ ->
    Event.Cas { expected = Simval.Int op.a; desired = Simval.Int op.b }

let pp_op op =
  Fmt.str "%a@o%d" Event.pp_prim (prim_of_op op) op.obj

let op_gen =
  QCheck.Gen.(
    map
      (fun (kind, obj, (a, b)) -> { kind; obj; a; b })
      (triple (int_range 0 2) (int_range 0 1)
         (pair (int_range 0 2) (int_range 0 2))))

let progs_gen =
  QCheck.Gen.(
    array_size (return 3) (list_size (int_range 0 4) op_gen))

let progs_arb =
  QCheck.make
    ~print:(fun progs ->
      String.concat " | "
        (Array.to_list
           (Array.map (fun p -> String.concat ";" (List.map pp_op p)) progs)))
    progs_gen

let final_states explorer ~session ~objs ~n ~make_body =
  let store = Session.store session in
  let states = Hashtbl.create 64 in
  let count = ref 0 in
  explorer session ~n ~make_body ~on_complete:(fun _ ->
      incr count;
      let key = List.map (fun o -> Store.get store o) objs in
      if not (Hashtbl.mem states key) then Hashtbl.add states key ();
      true);
  let keys = Hashtbl.fold (fun k () acc -> k :: acc) states [] in
  (List.sort compare keys, !count)

let prop_same_final_states =
  QCheck.Test.make ~name:"dpor and naive reach the same final store states"
    ~count:60 progs_arb (fun progs ->
      let session = Session.create () in
      let o0 = Session.alloc session ~name:"x" (Simval.Int 0) in
      let o1 = Session.alloc session ~name:"y" (Simval.Int 0) in
      let objs = [ o0; o1 ] in
      let make_body pid () =
        List.iter
          (fun op ->
            let obj = if op.obj = 0 then o0 else o1 in
            ignore (Session.mem_op session obj (prim_of_op op)))
          progs.(pid)
      in
      let naive_states, naive_count =
        final_states
          (fun s ~n ~make_body ~on_complete ->
            ignore (Explore.run s ~n ~make_body ~on_complete ()))
          ~session ~objs ~n:3 ~make_body
      in
      let dpor_states, dpor_count =
        final_states
          (fun s ~n ~make_body ~on_complete ->
            ignore (Dpor.run s ~n ~make_body ~on_complete ()))
          ~session ~objs ~n:3 ~make_body
      in
      naive_states = dpor_states && dpor_count <= naive_count)

(* A max register whose failed CAS silently drops the value (no retry):
   the canonical injected bug.  Used both for verdict agreement and for
   the shrinker tests below. *)
let buggy_maxreg session : Maxreg.Max_register.instance =
  let r = Session.alloc session ~name:"buggy" (Simval.Int 0) in
  let read_prim () =
    match Session.mem_op session r Event.Read with
    | Event.RVal v -> v
    | Event.RAck | Event.RBool _ -> assert false
  in
  { read_max = (fun () -> Simval.int_or ~default:0 (read_prim ()));
    write_max =
      (fun ~pid:_ v ->
        let cur = read_prim () in
        if v > Simval.int_or ~default:0 cur then
          (* one CAS attempt; on failure the value is lost *)
          ignore
            (Session.mem_op session r
               (Event.Cas { expected = cur; desired = Simval.Int v }))) }

let buggy_scenario () =
  let session = Session.create () in
  let reg = Harness.Annotate.max_register session (buggy_maxreg session) in
  let make_body pid () =
    match pid with
    | 0 -> reg.write_max ~pid 5
    | 1 -> reg.write_max ~pid 2
    | _ -> ignore (reg.read_max ())
  in
  (session, make_body)

(* On a buggy implementation both explorers must agree that a violation
   exists: if DPOR's pruning ever discarded the only violating trace
   class, this test would catch it. *)
let test_verdicts_agree_on_buggy () =
  let session, make_body = buggy_scenario () in
  let nstats, naive_failures =
    naive_explore ~session ~n:3 ~make_body ~check:(lin_maxreg ~n:3) ()
  in
  let dstats, dpor_failures =
    dpor_explore ~session ~n:3 ~make_body ~check:(lin_maxreg ~n:3) ()
  in
  Alcotest.(check bool) "neither truncated" false
    (nstats.Explore.truncated || dstats.Dpor.truncated);
  Alcotest.(check bool) "naive finds the bug" true (naive_failures > 0);
  Alcotest.(check bool) "dpor finds the bug" true (dpor_failures > 0)

(* The single-refresh Propagate ablation (A2): DPOR must also find the
   lost-update interleaving the naive enumeration finds. *)
let test_dpor_finds_single_refresh_bug () =
  let session = Session.create () in
  let module M = (val Smem.Sim_memory.bind session) in
  let module F = Farray.Make (M) in
  let sum a b =
    Simval.Int (Simval.int_or ~default:0 a + Simval.int_or ~default:0 b)
  in
  let t = F.create ~refreshes:1 ~n:2 ~combine:sum () in
  let make_body pid () =
    let c = Simval.int_or ~default:0 (F.read_leaf t pid) in
    F.update t ~leaf:pid (Simval.Int (c + 1))
  in
  let lost = ref 0 in
  ignore
    (Dpor.run session ~n:2 ~make_body
       ~on_complete:(fun _ ->
         if Simval.int_or ~default:0 (F.read t) <> 2 then incr lost;
         true)
       ());
  Alcotest.(check bool) "dpor finds the lost update" true (!lost > 0)

(* {1 Acceptance: Algorithm A pruning ratio} *)

(* The 3-process Algorithm A write/read scenario: same verdict as the
   naive explorer, with >= 10x fewer complete schedules. *)
let test_algorithm_a_pruning_ratio () =
  let session = Session.create () in
  let reg =
    Harness.Annotate.max_register session
      (Harness.Instances.maxreg_sim session ~n:3 ~bound:8
         Harness.Instances.Algorithm_a)
  in
  let make_body pid () =
    if pid = 0 then reg.write_max ~pid 5 else ignore (reg.read_max ())
  in
  let nstats, naive_failures =
    naive_explore ~session ~n:3 ~make_body ~check:(lin_maxreg ~n:3) ()
  in
  let dstats, dpor_failures =
    dpor_explore ~session ~n:3 ~make_body ~check:(lin_maxreg ~n:3) ()
  in
  Alcotest.(check bool) "neither truncated" false
    (nstats.Explore.truncated || dstats.Dpor.truncated);
  Alcotest.(check int) "naive verdict: linearizable" 0 naive_failures;
  Alcotest.(check int) "dpor verdict: linearizable" 0 dpor_failures;
  Alcotest.(check bool)
    (Printf.sprintf "dpor %d <= naive %d / 10" dstats.Dpor.explored
       nstats.Explore.explored)
    true
    (dstats.Dpor.explored * 10 <= nstats.Explore.explored)

(* {1 Pinned schedule counts}

   These pins document the pruning ratio on two canonical scenarios.  The
   counts are deterministic (exploration order is fixed); if a change to
   the DPOR engine, the scheduler, or an implementation shifts them, update
   the pin TOGETHER WITH A COMMENT in the diff explaining why the new count
   is correct (e.g. a sharper independence relation lowering it, an extra
   event in the implementation raising it).  An unexplained increase means
   lost pruning; an unexplained decrease means lost coverage. *)

let test_pinned_counts_algorithm_a () =
  let session = Session.create () in
  let reg =
    Harness.Annotate.max_register session
      (Harness.Instances.maxreg_sim session ~n:3 ~bound:8
         Harness.Instances.Algorithm_a)
  in
  let make_body pid () =
    if pid = 0 then reg.write_max ~pid 5 else ignore (reg.read_max ())
  in
  let dstats, _ =
    dpor_explore ~session ~n:3 ~make_body ~check:(fun _ -> true) ()
  in
  (* 1 writer (26 events) + 2 O(1) readers: the readers race only with the
     root CASes of Propagate, so 756 naive interleavings collapse to 9
     trace classes. *)
  Alcotest.(check int) "algorithm A w+r+r classes" 9 dstats.Dpor.explored

let test_pinned_counts_cas_maxreg () =
  let session = Session.create () in
  let reg =
    Harness.Annotate.max_register session
      (Harness.Instances.maxreg_sim session ~n:3 ~bound:8
         Harness.Instances.Cas_maxreg)
  in
  let make_body pid () =
    match pid with
    | 0 -> reg.write_max ~pid 2
    | 1 -> reg.write_max ~pid 5
    | _ -> ignore (reg.read_max ())
  in
  let dstats, _ =
    dpor_explore ~session ~n:3 ~make_body ~check:(fun _ -> true) ()
  in
  (* Every event of the CAS loop touches the single register, so almost
     nothing commutes: 35 naive schedules (retries included) only collapse
     to 12 — documenting that DPOR pays off on tree algorithms, not on
     single-hot-spot ones. *)
  Alcotest.(check int) "cas-loop w+w+r classes" 12 dstats.Dpor.explored

(* {1 DPOR-powered exhaustive suites (n = 3)}

   Model checking that the naive explorer cannot finish: every trace class
   of each scenario is visited and checked linearizable. *)

let test_algorithm_a_n3_exhaustive () =
  let session = Session.create () in
  let reg =
    Harness.Annotate.max_register session
      (Harness.Instances.maxreg_sim session ~n:3 ~bound:4
         Harness.Instances.Algorithm_a)
  in
  let make_body pid () =
    match pid with
    | 0 -> reg.write_max ~pid 1
    | 1 -> reg.write_max ~pid 3
    | _ -> ignore (reg.read_max ())
  in
  (* Theorem 5 (linearizability) and the step-bound half of Theorem 6
     (wait-freedom) checked over EVERY trace class: linearizable, and no
     process exceeds a fixed step bound in any interleaving. *)
  let max_steps = ref 0 in
  let check trace =
    List.iter
      (fun pid -> max_steps := max !max_steps (Trace.step_count trace pid))
      (Trace.pids trace);
    lin_maxreg ~n:3 trace
  in
  let dstats, failures = dpor_explore ~session ~n:3 ~make_body ~check () in
  Alcotest.(check bool) "not truncated" false dstats.Dpor.truncated;
  Alcotest.(check bool)
    (Printf.sprintf "real coverage (%d classes)" dstats.Dpor.explored)
    true
    (dstats.Dpor.explored >= 500);
  Alcotest.(check int) "all linearizable (theorem 5 at n=3)" 0 failures;
  Alcotest.(check bool)
    (Printf.sprintf "wait-free step bound holds everywhere (max %d)"
       !max_steps)
    true
    (!max_steps <= 64)

let test_cas_maxreg_n3_exhaustive () =
  let session = Session.create () in
  let reg =
    Harness.Annotate.max_register session
      (Harness.Instances.maxreg_sim session ~n:3 ~bound:8
         Harness.Instances.Cas_maxreg)
  in
  let make_body pid () =
    match pid with
    | 0 -> reg.write_max ~pid 2
    | 1 -> reg.write_max ~pid 5
    | _ -> ignore (reg.read_max ())
  in
  let dstats, failures =
    dpor_explore ~session ~n:3 ~make_body ~check:(lin_maxreg ~n:3) ()
  in
  Alcotest.(check bool) "not truncated" false dstats.Dpor.truncated;
  Alcotest.(check int) "all linearizable" 0 failures

let test_farray_counter_n3_exhaustive () =
  let session = Session.create () in
  let c =
    Harness.Annotate.counter session
      (Harness.Instances.counter_sim session ~n:3 ~bound:8
         Harness.Instances.Farray_counter)
  in
  let make_body pid () =
    if pid < 2 then c.increment ~pid else ignore (c.read ())
  in
  let dstats, failures =
    dpor_explore ~session ~n:3 ~make_body ~check:(lin_counter ~n:3) ()
  in
  Alcotest.(check bool) "not truncated" false dstats.Dpor.truncated;
  Alcotest.(check bool)
    (Printf.sprintf "real coverage (%d classes)" dstats.Dpor.explored)
    true
    (dstats.Dpor.explored >= 10_000);
  Alcotest.(check int) "all linearizable" 0 failures

let test_farray_snapshot_n3_exhaustive () =
  let session = Session.create () in
  let s =
    Harness.Annotate.snapshot session
      (Harness.Instances.snapshot_sim session ~n:3
         Harness.Instances.Farray_snapshot)
  in
  let make_body pid () =
    if pid < 2 then s.update ~pid (pid + 5) else ignore (s.scan ())
  in
  let dstats, failures =
    dpor_explore ~session ~n:3 ~make_body ~check:(lin_snapshot ~n:3) ()
  in
  Alcotest.(check bool) "not truncated" false dstats.Dpor.truncated;
  Alcotest.(check bool)
    (Printf.sprintf "real coverage (%d classes)" dstats.Dpor.explored)
    true
    (dstats.Dpor.explored >= 10_000);
  Alcotest.(check int) "all linearizable" 0 failures

(* {1 Shrinking} *)

let test_minimize_synthetic () =
  (* the "bug" needs a 1 before a 3: minimize must strip everything else *)
  let rec has_1_then_3 = function
    | [] -> false
    | 1 :: rest -> List.mem 3 rest
    | _ :: rest -> has_1_then_3 rest
  in
  let minimal =
    Shrink.minimize ~test:has_1_then_3 [ 0; 2; 1; 0; 2; 3; 1; 3; 0 ]
  in
  Alcotest.(check (list int)) "minimal witness" [ 1; 3 ] minimal

let test_minimize_rejects_passing_schedule () =
  Alcotest.check_raises "initial schedule must satisfy test"
    (Invalid_argument "Shrink.minimize: the initial schedule does not satisfy test")
    (fun () -> ignore (Shrink.minimize ~test:(fun _ -> false) [ 0; 1 ]))

(* The injected-bug register must shrink to a tiny, still-violating,
   1-minimal repro. *)
let test_shrink_buggy_maxreg () =
  let session, make_body = buggy_scenario () in
  let check = lin_maxreg ~n:3 in
  (* find a violating schedule exhaustively (deterministic) *)
  let violating = ref None in
  ignore
    (Dpor.run session ~n:3 ~make_body
       ~on_complete:(fun trace ->
         if check trace then true
         else begin
           violating := Some (Trace.schedule trace);
           false
         end)
       ());
  match !violating with
  | None -> Alcotest.fail "expected the buggy register to violate"
  | Some schedule ->
    let minimal, min_trace =
      Shrink.counterexample session ~n:3 ~make_body ~check schedule
    in
    Alcotest.(check bool) "still a violation" false (check min_trace);
    Alcotest.(check bool)
      (Printf.sprintf "shrunk to %d events" (List.length minimal))
      true
      (List.length minimal <= 6);
    (* 1-minimality: dropping any single event loses the violation *)
    List.iteri
      (fun i _ ->
        let cand =
          List.filteri (fun j _ -> j <> i) minimal
        in
        let trace = Shrink.replay session ~n:3 ~make_body cand in
        Alcotest.(check bool)
          (Printf.sprintf "dropping event %d loses the violation" i)
          true (check trace))
      minimal

(* A long random violating run through the stress-tool path also shrinks
   to the same tiny repro. *)
let test_shrink_from_random_run () =
  let session, make_body = buggy_scenario () in
  let check = lin_maxreg ~n:3 in
  let rec find_violating seed =
    if seed > 500 then Alcotest.fail "no violating random schedule found"
    else begin
      Store.reset (Session.store session);
      let sched = Scheduler.create session in
      for pid = 0 to 2 do
        ignore (Scheduler.spawn sched (make_body pid))
      done;
      Scheduler.run_random ~seed ~max_events:10_000 sched;
      let trace = Scheduler.finish sched in
      if check trace then find_violating (seed + 1) else trace
    end
  in
  let trace = find_violating 1 in
  let minimal, min_trace =
    Shrink.counterexample session ~n:3 ~make_body ~check
      (Trace.schedule trace)
  in
  Alcotest.(check bool) "still a violation" false (check min_trace);
  Alcotest.(check bool)
    (Printf.sprintf "shrunk to %d events" (List.length minimal))
    true
    (List.length minimal <= 6)

let () =
  Alcotest.run "dpor"
    [ ( "engine",
        [ Alcotest.test_case "disjoint objects collapse to one trace" `Quick
            test_disjoint_collapses;
          Alcotest.test_case "conflicting writes keep both orders" `Quick
            test_conflict_keeps_both_orders;
          Alcotest.test_case "no duplicate schedules (sleep sets)" `Quick
            test_no_duplicate_schedules;
          QCheck_alcotest.to_alcotest prop_same_final_states;
          Alcotest.test_case "verdicts agree on an injected bug" `Quick
            test_verdicts_agree_on_buggy;
          Alcotest.test_case "finds the single-refresh lost update (A2)"
            `Quick test_dpor_finds_single_refresh_bug ] );
      ( "pruning",
        [ Alcotest.test_case "algorithm A w+r+r: >=10x fewer schedules"
            `Quick test_algorithm_a_pruning_ratio;
          Alcotest.test_case "pinned: algorithm A w+r+r = 9 classes" `Quick
            test_pinned_counts_algorithm_a;
          Alcotest.test_case "pinned: cas-loop w+w+r = 12 classes" `Quick
            test_pinned_counts_cas_maxreg ] );
      ( "model checking (n=3)",
        [ Alcotest.test_case "algorithm A w+w+r, exhaustive" `Slow
            test_algorithm_a_n3_exhaustive;
          Alcotest.test_case "cas-loop max register w+w+r, exhaustive" `Quick
            test_cas_maxreg_n3_exhaustive;
          Alcotest.test_case "f-array counter i+i+r, exhaustive" `Slow
            test_farray_counter_n3_exhaustive;
          Alcotest.test_case "f-array snapshot u+u+s, exhaustive" `Slow
            test_farray_snapshot_n3_exhaustive ] );
      ( "shrinking",
        [ Alcotest.test_case "synthetic ddmin" `Quick test_minimize_synthetic;
          Alcotest.test_case "rejects a passing schedule" `Quick
            test_minimize_rejects_passing_schedule;
          Alcotest.test_case "injected bug shrinks to <= 6 events" `Quick
            test_shrink_buggy_maxreg;
          Alcotest.test_case "random stress run shrinks too" `Quick
            test_shrink_from_random_run ] ) ]
