(* Exhaustive linearizability verification: explore every schedule of
   small configurations — up to commutation of independent events, via
   DPOR — and check each complete execution with the Wing-Gong checker.
   Complements the random sweeps of test_maxreg / test_counters /
   test_snapshots — in these tiny regimes, absence of counterexamples is
   a proof over the whole schedule space.  Class counts are pinned:
   linearizability is invariant under swapping independent events, so the
   Mazurkiewicz classes carry the proof, and a changed count is a changed
   algorithm (or a broken explorer) worth noticing. *)

open Memsim

let check_dpor_classes ~session ~n ~make_body ~check ~classes =
  let explored = ref 0 in
  let failures = ref 0 in
  let stats =
    Dpor.run session ~n ~make_body
      ~on_complete:(fun trace ->
        incr explored;
        if not (check trace) then incr failures;
        true)
      ()
  in
  Alcotest.(check bool) "not truncated" false stats.Dpor.truncated;
  Alcotest.(check int) "pinned trace-class count" classes !explored;
  Alcotest.(check int) "no violations" 0 !failures

let check_fixed_interleavings ~session ~n ~make_body ~check ~expect_min =
  let counts = Explore.solo_counts session ~n ~make_body in
  let explored = ref 0 in
  let failures = ref 0 in
  let stats =
    Explore.run_interleavings session ~make_body ~counts
      ~on_complete:(fun trace ->
        incr explored;
        if not (check trace) then incr failures;
        true)
      ()
  in
  Alcotest.(check bool) "not truncated" false stats.Explore.truncated;
  Alcotest.(check bool)
    (Printf.sprintf "explored %d >= %d schedules" !explored expect_min)
    true (!explored >= expect_min);
  Alcotest.(check int) "no violations" 0 !failures

(* {1 AAC max register: 2 writers + 1 reader, all interleavings} *)

let test_aac_maxreg_exhaustive () =
  let session = Session.create () in
  let reg =
    Harness.Annotate.max_register session
      (Harness.Instances.maxreg_sim session ~n:3 ~bound:4
         Harness.Instances.Aac_maxreg)
  in
  let make_body pid () =
    match pid with
    | 0 -> reg.write_max ~pid 1
    | 1 -> reg.write_max ~pid 3
    | _ -> ignore (reg.read_max ())
  in
  (* AAC writes short-circuit when a concurrent writer already set a
     switch, so step counts are schedule-dependent — DPOR handles that *)
  check_dpor_classes ~session ~n:3 ~make_body
    ~check:
      (Linearize.Checker.check_trace (module Linearize.Spec.Max_register) ~n:3)
    ~classes:5

(* {1 CAS-loop max register (retries: schedule-dependent counts)} *)

let test_cas_maxreg_exhaustive () =
  let session = Session.create () in
  let reg =
    Harness.Annotate.max_register session
      (Harness.Instances.maxreg_sim session ~n:3 ~bound:8
         Harness.Instances.Cas_maxreg)
  in
  let make_body pid () =
    match pid with
    | 0 -> reg.write_max ~pid 2
    | 1 -> reg.write_max ~pid 5
    | _ -> ignore (reg.read_max ())
  in
  check_dpor_classes ~session ~n:3 ~make_body
    ~check:
      (Linearize.Checker.check_trace (module Linearize.Spec.Max_register) ~n:3)
    ~classes:12

(* {1 Naive counter: 2 incrementers + 1 reader} *)

let test_naive_counter_exhaustive () =
  let session = Session.create () in
  let c =
    Harness.Annotate.counter session
      (Harness.Instances.counter_sim session ~n:3 ~bound:8
         Harness.Instances.Naive_counter)
  in
  let make_body pid () =
    if pid < 2 then c.increment ~pid else ignore (c.read ())
  in
  check_fixed_interleavings ~session ~n:3 ~make_body
    ~check:(Linearize.Checker.check_trace (module Linearize.Spec.Counter) ~n:3)
    ~expect_min:80

(* {1 F-array counter: 2 concurrent incrementers, every trace class of
   their propagations (the double-refresh CAS torture test).  Formerly a
   184k-interleaving enumeration; DPOR covers the same space in under a
   hundred classes — the final count is invariant under swapping
   independent events, so the verdict is identical.} *)

let test_farray_counter_exhaustive () =
  let session = Session.create () in
  let c =
    Harness.Instances.counter_sim session ~n:2 ~bound:8
      Harness.Instances.Farray_counter
  in
  let make_body pid () = c.increment ~pid in
  let explored = ref 0 in
  let failures = ref 0 in
  let stats =
    Dpor.run session ~n:2 ~make_body
      ~on_complete:(fun _trace ->
        incr explored;
        (* no reader in-flight: the final count must be exactly 2 in every
           execution (no lost increment, no double count) *)
        if c.read () <> 2 then incr failures;
        true)
      ()
  in
  Alcotest.(check bool) "not truncated" false stats.Dpor.truncated;
  Alcotest.(check int) "pinned trace-class count (was 184k interleavings)"
    94 !explored;
  Alcotest.(check int) "no lost increments anywhere" 0 !failures

(* {1 F-array max register semantics through Algorithm A's propagate:
   1 writer + 1 reader, all interleavings} *)

let test_algorithm_a_writer_reader_exhaustive () =
  let session = Session.create () in
  let reg =
    Harness.Annotate.max_register session
      (Harness.Instances.maxreg_sim session ~n:2 ~bound:8
         Harness.Instances.Algorithm_a)
  in
  let make_body pid () =
    if pid = 0 then reg.write_max ~pid 5 else ignore (reg.read_max ())
  in
  check_fixed_interleavings ~session ~n:2 ~make_body
    ~check:
      (Linearize.Checker.check_trace (module Linearize.Spec.Max_register) ~n:2)
    ~expect_min:10

(* {1 Double-collect snapshot: updater + updater + scanner (scanner length
   is schedule-dependent: retries)} *)

let test_double_collect_exhaustive () =
  let session = Session.create () in
  let s =
    Harness.Annotate.snapshot session
      (Harness.Instances.snapshot_sim session ~n:3
         Harness.Instances.Double_collect)
  in
  let make_body pid () =
    if pid < 2 then s.update ~pid (pid + 5) else ignore (s.scan ())
  in
  check_dpor_classes ~session ~n:3 ~make_body
    ~check:(Linearize.Checker.check_trace (module Linearize.Spec.Snapshot) ~n:3)
    ~classes:11

(* {1 Afek snapshot: updater + scanner (borrowing path included)} *)

let test_afek_exhaustive () =
  let session = Session.create () in
  let s =
    Harness.Annotate.snapshot session
      (Harness.Instances.snapshot_sim session ~n:2 Harness.Instances.Afek)
  in
  let make_body pid () =
    if pid = 0 then s.update ~pid 9 else ignore (s.scan ())
  in
  check_dpor_classes ~session ~n:2 ~make_body
    ~check:(Linearize.Checker.check_trace (module Linearize.Spec.Snapshot) ~n:2)
    ~classes:3

(* {1 A2 ablation regression: single refresh LOSES updates, double does
   not — over every interleaving of two f-array increments} *)

let lost_updates ~refreshes =
  let session = Session.create () in
  let module M = (val Smem.Sim_memory.bind session) in
  let module F = Farray.Make (M) in
  let sum a b =
    Simval.Int (Simval.int_or ~default:0 a + Simval.int_or ~default:0 b)
  in
  let t = F.create ~refreshes ~n:2 ~combine:sum () in
  let make_body pid () =
    let c = Simval.int_or ~default:0 (F.read_leaf t pid) in
    F.update t ~leaf:pid (Simval.Int (c + 1))
  in
  let counts = Explore.solo_counts session ~n:2 ~make_body in
  let lost = ref 0 in
  ignore
    (Explore.run_interleavings session ~make_body ~counts
       ~on_complete:(fun _ ->
         if Simval.int_or ~default:0 (F.read t) <> 2 then incr lost;
         true)
       ());
  !lost

let test_single_refresh_loses_updates () =
  Alcotest.(check bool) "single refresh drops increments" true
    (lost_updates ~refreshes:1 > 0)

(* {1 The interleaving enumerator agrees with the generic explorer} *)

(* {1 F-array snapshot: 2 concurrent updaters, all interleavings} *)

let test_farray_snapshot_exhaustive () =
  let session = Session.create () in
  let s =
    Harness.Instances.snapshot_sim session ~n:2
      Harness.Instances.Farray_snapshot
  in
  let make_body pid () = s.update ~pid (pid + 5) in
  let counts = Explore.solo_counts session ~n:2 ~make_body in
  let failures = ref 0 in
  let explored = ref 0 in
  let stats =
    Explore.run_interleavings session ~make_body ~counts
      ~on_complete:(fun _ ->
        incr explored;
        if s.scan () <> [| 5; 6 |] then incr failures;
        true)
      ()
  in
  Alcotest.(check bool) "not truncated" false stats.Explore.truncated;
  Alcotest.(check bool)
    (Printf.sprintf "explored %d" !explored)
    true (!explored > 1_000);
  Alcotest.(check int) "every interleaving converges" 0 !failures

(* {1 Unbounded B1 max register: 2 writers + reader, all interleavings} *)

let test_b1_maxreg_exhaustive () =
  let session = Session.create () in
  let reg =
    Harness.Annotate.max_register session
      (Harness.Instances.maxreg_sim session ~n:3 ~bound:8
         Harness.Instances.B1_maxreg)
  in
  let make_body pid () =
    match pid with
    | 0 -> reg.write_max ~pid 2
    | 1 -> reg.write_max ~pid 3
    | _ -> ignore (reg.read_max ())
  in
  check_dpor_classes ~session ~n:3 ~make_body
    ~check:
      (Linearize.Checker.check_trace (module Linearize.Spec.Max_register) ~n:3)
    ~classes:13

(* The interleaving enumerator visits exactly the multinomial number of
   schedules. *)
let prop_interleaving_count =
  QCheck.Test.make ~name:"run_interleavings visits multinomial(counts)"
    ~count:30
    QCheck.(pair (int_range 1 5) (int_range 1 5))
    (fun (c0, c1) ->
      let session = Session.create () in
      let a = Session.alloc session ~name:"a" (Simval.Int 0) in
      let make_body pid () =
        let steps = if pid = 0 then c0 else c1 in
        for _ = 1 to steps do
          ignore (Session.mem_op session a Event.Read)
        done
      in
      let seen = ref 0 in
      ignore
        (Explore.run_interleavings session ~make_body ~counts:[| c0; c1 |]
           ~on_complete:(fun _ -> incr seen; true)
           ());
      (* C(c0 + c1, c0) *)
      let rec fact n = if n <= 1 then 1 else n * fact (n - 1) in
      !seen = fact (c0 + c1) / (fact c0 * fact c1))

let test_enumerators_agree () =
  let session = Session.create () in
  let a = Session.alloc session ~name:"a" (Simval.Int 0) in
  let b = Session.alloc session ~name:"b" (Simval.Int 0) in
  let make_body pid () =
    let obj = if pid = 0 then a else b in
    ignore (Session.mem_op session obj Event.Read);
    ignore (Session.mem_op session obj (Event.Write (Simval.Int pid)))
  in
  let generic = ref 0 in
  let s1 =
    Explore.run session ~n:2 ~make_body
      ~on_complete:(fun _ -> incr generic; true)
      ()
  in
  let fixed = ref 0 in
  let s2 =
    Explore.run_interleavings session ~make_body ~counts:[| 2; 2 |]
      ~on_complete:(fun _ -> incr fixed; true)
      ()
  in
  Alcotest.(check bool) "neither truncated" false
    (s1.Explore.truncated || s2.Explore.truncated);
  (* interleavings of (2,2) = C(4,2) = 6 *)
  Alcotest.(check int) "generic count" 6 !generic;
  Alcotest.(check int) "fixed count" 6 !fixed

let () =
  Alcotest.run "exhaustive"
    [ ( "all interleavings",
        [ Alcotest.test_case "aac max register (w+w+r)" `Quick test_aac_maxreg_exhaustive;
          Alcotest.test_case "cas-loop max register (w+w+r)" `Quick test_cas_maxreg_exhaustive;
          Alcotest.test_case "naive counter (i+i+r)" `Quick test_naive_counter_exhaustive;
          Alcotest.test_case "algorithm A (w+r)" `Quick test_algorithm_a_writer_reader_exhaustive;
          Alcotest.test_case "double-collect (u+u+s)" `Quick test_double_collect_exhaustive;
          Alcotest.test_case "afek (u+s)" `Quick test_afek_exhaustive;
          Alcotest.test_case "farray counter (i+i), 94 classes (was 184k)" `Quick
            test_farray_counter_exhaustive;
          Alcotest.test_case "single refresh loses updates (A2)" `Quick
            test_single_refresh_loses_updates;
          Alcotest.test_case "farray snapshot (u+u)" `Quick
            test_farray_snapshot_exhaustive;
          Alcotest.test_case "b1 max register (w+w+r)" `Quick
            test_b1_maxreg_exhaustive;
          Alcotest.test_case "enumerators agree" `Quick test_enumerators_agree;
          QCheck_alcotest.to_alcotest prop_interleaving_count ] ) ]
