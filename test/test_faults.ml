(* The fault-injection layer: plan DSL round-trips, the two composition
   points (program-level crash/CAS-failure instrumentation, scheduler-level
   stall/halt gating), verdict parity on a mutant that loses wait-freedom
   under a stalled helper, exhaustive single-fault sweeps on 3-process
   Algorithm A and the CAS-loop register, and random fault plans with
   linearizability of the surviving histories. *)

open Memsim

let lin_maxreg ~n =
  Linearize.Checker.check_trace (module Linearize.Spec.Max_register) ~n

let lin_counter ~n =
  Linearize.Checker.check_trace (module Linearize.Spec.Counter) ~n

(* {1 Plan DSL} *)

let test_plan_roundtrip () =
  let plan =
    [ Faults.Crash { pid = 0; after = 7 };
      Faults.Cas_fail { pid = 2; nth = 1 };
      Faults.Stall { pid = 1; at = 3; points = 12 };
      Faults.Halt_all_but { pid = 2; at = 9 } ]
  in
  Alcotest.(check string)
    "prints compactly" "crash:0@7,casfail:2#1,stall:1@3+12,haltbut:2@9"
    (Faults.to_string plan);
  (match Faults.parse (Faults.to_string plan) with
   | Ok p -> Alcotest.(check bool) "parse inverts print" true (p = plan)
   | Error e -> Alcotest.fail e);
  (match Faults.parse "none" with
   | Ok [] -> ()
   | Ok _ | Error _ -> Alcotest.fail "\"none\" is the empty plan");
  List.iter
    (fun bad ->
      match Faults.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must not parse" bad))
    [ "crash:0"; "crash:x@1"; "casfail:1#0"; "stall:1@2"; "frob:1@2"; "crash:-1@2" ]

(* regression: inner whitespace used to fail (int_of_string doesn't trim),
   so a hand-edited plan like "crash: 0 @ 2" was rejected even though
   whitespace around commas worked.  Every clause kind, with spaces in
   every position, must parse to the same plan as the compact form. *)
let test_parse_whitespace () =
  let check_same spaced compact =
    match (Faults.parse spaced, Faults.parse compact) with
    | Ok a, Ok b ->
      Alcotest.(check bool) (Printf.sprintf "%S ≡ %S" spaced compact) true (a = b)
    | Error e, _ -> Alcotest.fail (Printf.sprintf "%S: %s" spaced e)
    | _, Error e -> Alcotest.fail (Printf.sprintf "%S: %s" compact e)
  in
  check_same "crash: 0 @ 2" "crash:0@2";
  check_same " casfail : 1 # 3 " "casfail:1#3";
  check_same "stall: 1 @ 3 + 12" "stall:1@3+12";
  check_same "haltbut: 2 @ 9" "haltbut:2@9";
  check_same "crash: 0 @ 2 , stall: 1 @ 3 + 12" "crash:0@2,stall:1@3+12"

(* regression: a clause repeated verbatim used to be accepted silently —
   but instrument/gate apply it once, so the plan lied about itself.  It
   must now be rejected, with an error a human can act on. *)
let test_parse_duplicate_rejected () =
  (match Faults.parse "crash:0@2,stall:1@3+4,crash:0@2" with
   | Ok _ -> Alcotest.fail "duplicate clause must not parse"
   | Error e ->
     let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     Alcotest.(check bool)
       (Printf.sprintf "error mentions duplicate: %S" e)
       true (contains e "duplicate"));
  (* distinct clauses of the same kind are not duplicates *)
  match Faults.parse "crash:0@2,crash:0@3,crash:1@2" with
  | Ok p -> Alcotest.(check int) "three distinct crashes" 3 (List.length p)
  | Error e -> Alcotest.fail e

let test_single_fault_enumerations () =
  Alcotest.(check int) "1-crash plans = sum of solo counts" (4 + 2 + 3)
    (List.length (Faults.single_crash_plans ~counts:[| 4; 2; 3 |]));
  Alcotest.(check int) "1-stall plans = n * (max_point + 1)" (3 * 8)
    (List.length (Faults.single_stall_plans ~n:3 ~max_point:7 ~points:5));
  List.iter
    (fun plan ->
      match plan with
      | [ (_ : Faults.fault) ] -> ()
      | _ -> Alcotest.fail "plans must be single-fault")
    (Faults.single_crash_plans ~counts:[| 4; 2; 3 |])

let test_minimize_plan () =
  let test = List.exists (function Faults.Crash { pid = 0; _ } -> true | _ -> false) in
  let minimal =
    Faults.minimize ~test
      [ Faults.Stall { pid = 1; at = 3; points = 4 };
        Faults.Crash { pid = 0; after = 7 };
        Faults.Cas_fail { pid = 2; nth = 2 } ]
  in
  Alcotest.(check bool) "stripped to the one relevant fault, shrunk to 0" true
    (minimal = [ Faults.Crash { pid = 0; after = 0 } ]);
  Alcotest.check_raises "initial plan must satisfy test"
    (Invalid_argument "Faults.minimize: test does not hold of the initial plan")
    (fun () ->
      ignore (Faults.minimize ~test:(fun _ -> false) [] : Faults.plan))

(* {1 Gate semantics} *)

let test_gate_stall_window () =
  let g = Faults.gate [ Faults.Stall { pid = 1; at = 2; points = 3 } ] in
  let permitted_at_each_point = ref [] in
  for _ = 0 to 6 do
    permitted_at_each_point := Faults.permits g 1 :: !permitted_at_each_point;
    Faults.tick g
  done;
  Alcotest.(check (list bool))
    "stalled exactly on [at, at+points)"
    [ true; true; false; false; false; true; true ]
    (List.rev !permitted_at_each_point);
  Alcotest.(check bool) "other pids unaffected" true (Faults.permits g 0)

let test_gate_halt_all_but () =
  let g = Faults.gate [ Faults.Halt_all_but { pid = 2; at = 2 } ] in
  Alcotest.(check bool) "before at: everyone runs" true
    (Faults.permits g 0 && Faults.permits g 1 && Faults.permits g 2);
  Alcotest.(check bool) "not yet frozen forever" false (Faults.halted_forever g 0);
  Faults.tick g;
  Faults.tick g;
  Alcotest.(check bool) "chosen pid still runs" true (Faults.permits g 2);
  Alcotest.(check bool) "others gated" false
    (Faults.permits g 0 || Faults.permits g 1);
  Alcotest.(check bool) "others frozen forever" true
    (Faults.halted_forever g 0 && Faults.halted_forever g 1);
  Alcotest.(check bool) "chosen pid not frozen" false (Faults.halted_forever g 2)

(* {1 Program-level instrumentation} *)

(* A crash truncates the body at exactly the requested local event count,
   and the scheduler sees an ordinary early completion. *)
let test_crash_truncates_exactly () =
  let session = Session.create () in
  let x = Session.alloc session ~name:"x" (Simval.Int 0) in
  let make_body _pid () =
    for v = 1 to 5 do
      ignore (Session.mem_op session x (Event.Write (Simval.Int v)))
    done
  in
  List.iter
    (fun after ->
      Store.reset (Session.store session);
      let plan = [ Faults.Crash { pid = 0; after } ] in
      let sched = Scheduler.create session in
      ignore (Scheduler.spawn sched (Faults.instrument plan make_body 0) : int);
      Scheduler.run_solo sched 0;
      let steps = Scheduler.steps_of sched 0 in
      ignore (Scheduler.finish sched : Trace.t);
      Alcotest.(check int)
        (Printf.sprintf "crash after %d issues %d events" after after)
        after steps;
      Alcotest.(check bool)
        (Printf.sprintf "store holds the last pre-crash write (after=%d)" after)
        true
        (Store.get (Session.store session) x = Simval.Int after))
    [ 0; 1; 3; 5 ]

(* A forced CAS failure is still one step (a trivial event on the same
   object), the body observes [false], and the store is untouched. *)
let test_cas_fail_forces_failure () =
  let session = Session.create () in
  let x = Session.alloc session ~name:"x" (Simval.Int 0) in
  let results = ref [] in
  let make_body _pid () =
    for v = 1 to 3 do
      match
        Session.mem_op session x
          (Event.Cas { expected = Simval.Int (v - 1); desired = Simval.Int v })
      with
      | Event.RBool ok -> results := ok :: !results
      | Event.RVal _ | Event.RAck -> assert false
    done
  in
  let run plan =
    Store.reset (Session.store session);
    results := [];
    let sched = Scheduler.create session in
    ignore (Scheduler.spawn sched (Faults.instrument plan make_body 0) : int);
    Scheduler.run_solo sched 0;
    let steps = Scheduler.steps_of sched 0 in
    ignore (Scheduler.finish sched : Trace.t);
    (List.rev !results, steps, Store.get (Session.store session) x)
  in
  let oks, steps, final = run [] in
  Alcotest.(check (list bool)) "unfaulted: all CASes win" [ true; true; true ] oks;
  Alcotest.(check int) "3 steps" 3 steps;
  Alcotest.(check bool) "chain completes" true (final = Simval.Int 3);
  let oks, steps, final = run [ Faults.Cas_fail { pid = 0; nth = 2 } ] in
  Alcotest.(check (list bool))
    "2nd CAS spuriously fails; 3rd honestly fails (stale expected)"
    [ true; false; false ] oks;
  Alcotest.(check int) "still 3 steps (failure is an event)" 3 steps;
  Alcotest.(check bool) "chain stops at the failure" true (final = Simval.Int 1)

(* Program faults compose with DPOR unchanged: on two disjoint objects a
   crashed writer still collapses to one trace class, and the class count
   shrinks with the crash point. *)
let test_crash_composes_with_dpor () =
  let session = Session.create () in
  let a = Session.alloc session ~name:"a" (Simval.Int 0) in
  let b = Session.alloc session ~name:"b" (Simval.Int 0) in
  let make_body pid () =
    let obj = if pid = 0 then a else b in
    ignore (Session.mem_op session obj Event.Read);
    ignore (Session.mem_op session obj (Event.Write (Simval.Int pid)))
  in
  let classes plan =
    let stats =
      Dpor.run session ~n:2
        ~make_body:(Faults.instrument plan make_body)
        ~on_complete:(fun _ -> true)
        ()
    in
    stats.Dpor.explored
  in
  Alcotest.(check int) "disjoint, no fault: 1 class" 1 (classes []);
  Alcotest.(check int) "disjoint, p0 crashed at 1: still 1 class" 1
    (classes [ Faults.Crash { pid = 0; after = 1 } ]);
  Alcotest.(check int) "p0 crashed before any event: 1 class" 1
    (classes [ Faults.Crash { pid = 0; after = 0 } ])

(* {1 Verdict parity: wait-freedom under a stalled helper}

   A register that delegates propagation to a helper process — writers
   publish to an announce cell and spin on the root until the helper has
   propagated — is linearizable but not wait-free: its step count under a
   stalled helper is unbounded.  The same audit must catch the mutant and
   pass the genuinely wait-free Algorithm A. *)

let helper_dependent_maxreg session =
  let announce = Session.alloc session ~name:"announce" (Simval.Int 0) in
  let root = Session.alloc session ~name:"root" (Simval.Int 0) in
  let read obj =
    match Session.mem_op session obj Event.Read with
    | Event.RVal v -> Simval.int_or ~default:0 v
    | Event.RAck | Event.RBool _ -> assert false
  in
  let write obj v =
    ignore (Session.mem_op session obj (Event.Write (Simval.Int v)))
  in
  let reg : Maxreg.Max_register.instance =
    { read_max = (fun () -> read root);
      write_max =
        (fun ~pid:_ v ->
          if v > read announce then write announce v;
          (* wait for the helper — unbounded without it *)
          while read root < v do () done) }
  in
  let helper ~rounds () =
    for _ = 1 to rounds do
      let a = read announce in
      let r = read root in
      if a > r then write root a
    done
  in
  (reg, helper)

(* Run the 2-process writer+helper scenario under [plan]; the writer is
   wait-free iff it completes within [ceiling] of its own steps no matter
   how the helper is gated. *)
let writer_outcome_under ~plan ~ceiling make_scenario =
  let session, make_body = make_scenario () in
  Store.reset (Session.store session);
  let sched = Scheduler.create session in
  for pid = 0 to 1 do
    ignore (Scheduler.spawn sched (Faults.instrument plan make_body pid) : int)
  done;
  let g = Faults.gate plan in
  Faults.run_round_robin ~max_events:2_000 sched g;
  let steps = Scheduler.steps_of sched 0 in
  let finished = Scheduler.is_finished sched 0 in
  ignore (Scheduler.finish sched : Trace.t);
  (finished && steps <= ceiling, steps)

let mutant_scenario () =
  let session = Session.create () in
  let raw, helper = helper_dependent_maxreg session in
  let reg = Harness.Annotate.max_register session raw in
  let make_body pid () =
    if pid = 0 then reg.write_max ~pid 5 else helper ~rounds:40 ()
  in
  (session, make_body)

let algorithm_a_scenario () =
  let session = Session.create () in
  let reg =
    Harness.Annotate.max_register session
      (Harness.Instances.maxreg_sim session ~n:2 ~bound:8
         Harness.Instances.Algorithm_a)
  in
  let make_body pid () =
    if pid = 0 then reg.write_max ~pid 5 else ignore (reg.read_max () : int)
  in
  (session, make_body)

let hostile_plans =
  [ [ Faults.Stall { pid = 1; at = 0; points = 200 } ];
    [ Faults.Halt_all_but { pid = 0; at = 1 } ] ]

let test_mutant_caught_under_stalled_helper () =
  (* sanity: with no fault the mutant does complete quickly *)
  let ok, steps = writer_outcome_under ~plan:[] ~ceiling:16 mutant_scenario in
  Alcotest.(check bool)
    (Printf.sprintf "mutant passes without faults (%d steps)" steps)
    true ok;
  List.iter
    (fun plan ->
      let ok, steps = writer_outcome_under ~plan ~ceiling:16 mutant_scenario in
      Alcotest.(check bool)
        (Fmt.str "mutant caught under %a (%d steps)" Faults.pp plan steps)
        false ok)
    hostile_plans

let test_algorithm_a_passes_under_stalled_helper () =
  List.iter
    (fun plan ->
      let ok, steps =
        writer_outcome_under ~plan ~ceiling:64 algorithm_a_scenario
      in
      Alcotest.(check bool)
        (Fmt.str "algorithm A wait-free under %a (%d steps)" Faults.pp plan
           steps)
        true ok)
    (* the no-fault baseline plus both hostile plans *)
    ([] :: hostile_plans)

(* {1 Exhaustive single-fault sweeps (acceptance criterion)}

   Every single-crash plan: DPOR over the instrumented program — crashes
   are program transformations, so DPOR's pruning applies as-is.  Every
   single-stall plan: the gated explorer (stalls are scheduling
   restrictions, invisible to the program).  In both sweeps every
   surviving history must linearize and every process must stay within
   the wait-free step bound. *)

let sweep_scenario_algorithm_a () =
  let session = Session.create () in
  let reg =
    Harness.Annotate.max_register session
      (Harness.Instances.maxreg_sim session ~n:3 ~bound:8
         Harness.Instances.Algorithm_a)
  in
  let make_body pid () =
    if pid = 0 then reg.write_max ~pid 5 else ignore (reg.read_max () : int)
  in
  (session, make_body)

let sweep_scenario_cas_loop () =
  let session = Session.create () in
  let reg =
    Harness.Annotate.max_register session
      (Harness.Instances.maxreg_sim session ~n:3 ~bound:8
         Harness.Instances.Cas_maxreg)
  in
  let make_body pid () =
    match pid with
    | 0 -> reg.write_max ~pid 2
    | 1 -> reg.write_max ~pid 5
    | _ -> ignore (reg.read_max () : int)
  in
  (session, make_body)

let checked ~step_bound ~n trace ~failures =
  List.iter
    (fun pid ->
      if Trace.step_count trace pid > step_bound then incr failures)
    (Trace.pids trace);
  if not (lin_maxreg ~n trace) then incr failures;
  true

let crash_sweep name make_scenario =
  let session, make_body = make_scenario () in
  let counts = Explore.solo_counts session ~n:3 ~make_body in
  let plans = Faults.single_crash_plans ~counts in
  Alcotest.(check bool)
    (Printf.sprintf "%s: sweep is non-trivial (%d plans)" name
       (List.length plans))
    true
    (List.length plans >= 5);
  let failures = ref 0 in
  let total_classes = ref 0 in
  List.iter
    (fun plan ->
      let stats =
        Dpor.run session ~n:3
          ~make_body:(Faults.instrument plan make_body)
          ~on_complete:(checked ~step_bound:64 ~n:3 ~failures)
          ()
      in
      Alcotest.(check bool)
        (Fmt.str "%s: %a not truncated" name Faults.pp plan)
        false stats.Dpor.truncated;
      total_classes := !total_classes + stats.Dpor.explored)
    plans;
  Alcotest.(check int)
    (Printf.sprintf
       "%s: all surviving histories linearizable, step bound holds (%d plans, \
        %d classes)"
       name (List.length plans) !total_classes)
    0 !failures

let test_crash_sweep_algorithm_a () =
  crash_sweep "algorithm A w+r+r" sweep_scenario_algorithm_a

let test_crash_sweep_cas_loop () =
  crash_sweep "cas-loop w+w+r" sweep_scenario_cas_loop

let stall_sweep name make_scenario ~points =
  let session, make_body = make_scenario () in
  let counts = Explore.solo_counts session ~n:3 ~make_body in
  (* stalls starting beyond the longest possible execution never bind *)
  let max_point = Array.fold_left ( + ) 0 counts in
  let plans = Faults.single_stall_plans ~n:3 ~max_point ~points in
  let failures = ref 0 in
  List.iter
    (fun plan ->
      let stats =
        Faults.explore session ~n:3 ~make_body ~plan ~max_events:100
          ~on_complete:(checked ~step_bound:64 ~n:3 ~failures)
          ()
      in
      Alcotest.(check bool)
        (Fmt.str "%s: %a not truncated" name Faults.pp plan)
        false stats.Explore.truncated;
      Alcotest.(check bool)
        (Fmt.str "%s: %a explored something" name Faults.pp plan)
        true
        (stats.Explore.explored > 0))
    plans;
  Alcotest.(check int)
    (Printf.sprintf "%s: linearizable within step bound under all %d stalls"
       name (List.length plans))
    0 !failures

let test_stall_sweep_algorithm_a () =
  stall_sweep "algorithm A w+r+r" sweep_scenario_algorithm_a ~points:5

let test_stall_sweep_cas_loop () =
  stall_sweep "cas-loop w+w+r" sweep_scenario_cas_loop ~points:5

(* {1 Random fault plans (qcheck)}

   Arbitrary small plans over correct implementations: whatever the
   faults, the surviving history must linearize. *)

let fault_gen ~n =
  QCheck.Gen.(
    int_range 0 3 >>= fun kind ->
    int_range 0 (n - 1) >>= fun pid ->
    int_range 0 20 >>= fun a ->
    int_range 1 10 >>= fun b ->
    return
      (match kind with
       | 0 -> Faults.Crash { pid; after = a }
       | 1 -> Faults.Cas_fail { pid; nth = b }
       | 2 -> Faults.Stall { pid; at = a; points = b }
       | _ -> Faults.Halt_all_but { pid; at = a }))

let plan_arb ~n =
  QCheck.make
    ~print:Faults.to_string
    QCheck.Gen.(list_size (int_range 1 3) (fault_gen ~n))

(* print/parse round-trip over arbitrary duplicate-free plans — the
   unit pins above check hand-picked clauses; this fuzzes the whole
   space, including whitespace-injected renderings *)
let dedup plan =
  List.rev
    (List.fold_left
       (fun acc f -> if List.mem f acc then acc else f :: acc)
       [] plan)

let qcheck_parse_roundtrip =
  QCheck.Test.make ~count:300 ~name:"parse (to_string plan) = Ok plan"
    (QCheck.map dedup (plan_arb ~n:4))
    (fun plan ->
      Faults.parse (Faults.to_string plan) = Ok plan
      && (* spaces around every clause survive too *)
      Faults.parse
        (String.concat " , " (List.map (fun f -> Faults.to_string [ f ]) plan))
      = Ok plan)

let surviving_history_linearizable name make_scenario check =
  QCheck.Test.make ~count:150
    ~name:(name ^ ": surviving histories linearize under random plans")
    (QCheck.pair (plan_arb ~n:3) (QCheck.int_range 0 10_000))
    (fun (plan, seed) ->
      let session, make_body = make_scenario () in
      Store.reset (Session.store session);
      let sched = Scheduler.create session in
      for pid = 0 to 2 do
        ignore
          (Scheduler.spawn sched (Faults.instrument plan make_body pid) : int)
      done;
      let g = Faults.gate plan in
      Faults.run_random ~max_events:400 ~seed sched g;
      let trace = Scheduler.finish sched in
      check ~n:3 trace)

let counter_scenario () =
  let session = Session.create () in
  let c =
    Harness.Annotate.counter session
      (Harness.Instances.counter_sim session ~n:3 ~bound:8
         Harness.Instances.Farray_counter)
  in
  let make_body pid () =
    if pid < 2 then c.increment ~pid else ignore (c.read () : int)
  in
  (session, make_body)

let qcheck_random_plans =
  [ surviving_history_linearizable "algorithm A" sweep_scenario_algorithm_a
      lin_maxreg;
    surviving_history_linearizable "cas-loop" sweep_scenario_cas_loop
      lin_maxreg;
    surviving_history_linearizable "f-array counter" counter_scenario
      lin_counter ]

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "faults"
    [ ( "plan dsl",
        [ Alcotest.test_case "print/parse round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "whitespace tolerated everywhere" `Quick
            test_parse_whitespace;
          Alcotest.test_case "duplicate clause rejected" `Quick
            test_parse_duplicate_rejected;
          QCheck_alcotest.to_alcotest ~verbose:false qcheck_parse_roundtrip;
          Alcotest.test_case "single-fault enumerations" `Quick
            test_single_fault_enumerations;
          Alcotest.test_case "plan minimization" `Quick test_minimize_plan ] );
      ( "gate",
        [ Alcotest.test_case "stall window" `Quick test_gate_stall_window;
          Alcotest.test_case "halt-all-but" `Quick test_gate_halt_all_but ] );
      ( "instrumentation",
        [ Alcotest.test_case "crash truncates exactly" `Quick
            test_crash_truncates_exactly;
          Alcotest.test_case "forced CAS failure" `Quick
            test_cas_fail_forces_failure;
          Alcotest.test_case "crash composes with dpor" `Quick
            test_crash_composes_with_dpor ] );
      ( "verdict parity",
        [ Alcotest.test_case "helper-dependent mutant caught" `Quick
            test_mutant_caught_under_stalled_helper;
          Alcotest.test_case "algorithm A passes the same audit" `Quick
            test_algorithm_a_passes_under_stalled_helper ] );
      ( "single-fault sweeps",
        [ Alcotest.test_case "all 1-crash plans, algorithm A (dpor)" `Quick
            test_crash_sweep_algorithm_a;
          Alcotest.test_case "all 1-crash plans, cas-loop (dpor)" `Quick
            test_crash_sweep_cas_loop;
          Alcotest.test_case "all 1-stall plans, algorithm A" `Slow
            test_stall_sweep_algorithm_a;
          Alcotest.test_case "all 1-stall plans, cas-loop" `Quick
            test_stall_sweep_cas_loop ] );
      ("random plans", qsuite qcheck_random_plans) ]
