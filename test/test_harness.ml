(* Tests for the harness utilities: the counting-memory wrapper, step
   measurement, statistics, and table rendering. *)

open Memsim

(* {1 Counting memory} *)

let test_counting_memory () =
  let counting, counts =
    Smem.Counting_memory.wrap (module Smem.Atomic_memory)
  in
  let module M = (val counting) in
  let r = M.make (Simval.Int 0) in
  ignore (M.read r);
  ignore (M.read r);
  M.write r (Simval.Int 5);
  ignore (M.cas r ~expected:(Simval.Int 5) ~desired:(Simval.Int 6));
  ignore (M.cas r ~expected:(Simval.Int 99) ~desired:(Simval.Int 7));
  Alcotest.(check int) "reads" 2 counts.Smem.Counting_memory.reads;
  Alcotest.(check int) "writes" 1 counts.Smem.Counting_memory.writes;
  Alcotest.(check int) "cas" 2 counts.Smem.Counting_memory.cas;
  Alcotest.(check int) "total" 5 (Smem.Counting_memory.total counts);
  Smem.Counting_memory.reset counts;
  Alcotest.(check int) "reset" 0 (Smem.Counting_memory.total counts)

let test_counting_wrapper_is_isolated () =
  let m1, c1 = Smem.Counting_memory.wrap (module Smem.Atomic_memory) in
  let m2, c2 = Smem.Counting_memory.wrap (module Smem.Atomic_memory) in
  let module M1 = (val m1) in
  let module M2 = (val m2) in
  let r1 = M1.make (Simval.Int 0) and r2 = M2.make (Simval.Int 0) in
  ignore (M1.read r1);
  ignore (M1.read r1);
  ignore (M2.read r2);
  Alcotest.(check int) "m1 counts" 2 c1.Smem.Counting_memory.reads;
  Alcotest.(check int) "m2 counts" 1 c2.Smem.Counting_memory.reads

(* The counting wrapper agrees with the simulator's own step accounting. *)
let test_counting_agrees_with_sim () =
  let session = Session.create () in
  let counting, counts = Smem.Counting_memory.wrap (Smem.Sim_memory.bind session) in
  let module M = (val counting) in
  let module A = Maxreg.Algorithm_a.Make (M) in
  let reg = A.create ~n:16 () in
  Session.reset_steps session;
  Smem.Counting_memory.reset counts;
  A.write_max reg ~pid:0 7;
  ignore (A.read_max reg);
  Alcotest.(check int) "same total"
    (Session.direct_steps session)
    (Smem.Counting_memory.total counts)

(* {1 Measurement} *)

let test_measure_steps () =
  let session = Session.create () in
  let a = Session.alloc session ~name:"a" (Simval.Int 0) in
  let steps =
    Harness.Measure.steps session (fun () ->
        ignore (Session.mem_op session a Event.Read);
        ignore (Session.mem_op session a (Event.Write (Simval.Int 1))))
  in
  Alcotest.(check int) "two events" 2 steps

let test_measure_max_steps () =
  let session = Session.create () in
  let a = Session.alloc session ~name:"a" (Simval.Int 0) in
  let worst =
    Harness.Measure.max_steps session ~trials:5 (fun i ->
        for _ = 0 to i do
          ignore (Session.mem_op session a Event.Read)
        done)
  in
  Alcotest.(check int) "worst trial issues 5 reads" 5 worst

let test_measure_powers () =
  Alcotest.(check (list int)) "powers" [ 2; 4; 8; 16 ]
    (Harness.Measure.powers ~start:2 ~stop:16);
  Alcotest.(check (list int)) "stop not power" [ 3; 6; 12 ]
    (Harness.Measure.powers ~start:3 ~stop:13)

(* {1 Statistics} *)

let test_stats () =
  let s = Harness.Stats.summarize [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check int) "count" 4 s.Harness.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Harness.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1. s.Harness.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4. s.Harness.Stats.max;
  (* sample stddev (Bessel-corrected): sqrt(5/3), not the population
     sqrt(5/4) — benchmark trials are a sample, not the population *)
  Alcotest.(check (float 1e-6)) "stddev" 1.290994449 s.Harness.Stats.stddev

let test_stats_single () =
  let s = Harness.Stats.summarize [ 7. ] in
  Alcotest.(check int) "count" 1 s.Harness.Stats.count;
  Alcotest.(check (float 1e-9)) "stddev defined (0) for n=1" 0.
    s.Harness.Stats.stddev

let test_stats_empty () =
  let s = Harness.Stats.summarize [] in
  Alcotest.(check int) "count" 0 s.Harness.Stats.count;
  (* no infinite extremes leaking out of the fold's seed values *)
  Alcotest.(check (float 0.)) "min" 0. s.Harness.Stats.min;
  Alcotest.(check (float 0.)) "max" 0. s.Harness.Stats.max

let test_stats_nonfinite_dropped () =
  let s = Harness.Stats.summarize [ 1.; nan; 3.; infinity ] in
  Alcotest.(check int) "count" 2 s.Harness.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 2. s.Harness.Stats.mean;
  Alcotest.(check (float 1e-9)) "max" 3. s.Harness.Stats.max;
  let s = Harness.Stats.summarize [ nan ] in
  Alcotest.(check int) "all dropped" 0 s.Harness.Stats.count;
  Alcotest.(check (float 0.)) "empty min" 0. s.Harness.Stats.min

let test_stats_ints () =
  let s = Harness.Stats.summarize_ints [ 10; 20 ] in
  Alcotest.(check (float 1e-9)) "mean" 15. s.Harness.Stats.mean

(* {1 Throughput window arithmetic}

   Pin the elapsed-time denominator against a scripted clock: the rate
   must be [operations / measured elapsed], never [operations /
   requested seconds].  (The old accounting divided by the request,
   counting spawn cost, startup skew and post-sleep operations into a
   window that didn't contain them.) *)

let scripted_clock times =
  let i = ref 0 in
  fun () ->
    let k = !i in
    incr i;
    if k < Array.length times then times.(k) else times.(Array.length times - 1)

let test_run_alone_measured_window () =
  (* now() call sites: deadline base, t0, loop checks..., t1 after exit.
     Script one chunk (1024 ops at batch 1) and a window of 2.0 measured
     seconds: the rate must be 1024 / 2.0 regardless of the requested
     1.0s. *)
  let now = scripted_clock [| 0.0; 0.0; 0.5; 1.5; 2.0 |] in
  let ops = ref 0 in
  let rate =
    Harness.Throughput.run_alone ~now ~seconds:1.0 ~batch:1
      ~op:(fun _ _ -> incr ops) ()
  in
  Alcotest.(check int) "one chunk ran" 1024 !ops;
  Alcotest.(check (float 1e-9)) "ops / measured elapsed" 512. rate

let test_run_batched_measured_window () =
  (* multi-domain: now() is called exactly twice (t0 at the start
     barrier, t1 after stop is acknowledged); sleep is a no-op so the
     workers run only for the flag-flip interval.  Whatever they manage
     to do, the denominator must be the scripted t1 - t0 = 2.5s, and
     every counted call must lie inside the acknowledged window. *)
  let now = scripted_clock [| 10.0; 12.5 |] in
  let batch = 4 in
  let calls = Atomic.make 0 in
  (* "sleep" until the workers have demonstrably operated, so the window
     provably contains work without depending on real time *)
  let sleep _ =
    while Atomic.get calls < 8 do
      Domain.cpu_relax ()
    done
  in
  let rate =
    Harness.Throughput.run_batched ~now ~sleep ~domains:2 ~seconds:99.0 ~batch
      ~op:(fun _ _ -> Atomic.incr calls)
      ()
  in
  let counted = float_of_int (batch * Atomic.get calls) in
  Alcotest.(check bool) "workers made progress" true (counted > 0.);
  (* rate * elapsed recovers exactly the operations the workers counted *)
  Alcotest.(check (float 1e-6)) "ops / measured elapsed" counted (rate *. 2.5)

let test_run_batched_latency_alone_window () =
  (* domains = 1 latency path: same call sites as run_alone but one op
     per loop iteration.  deadline base 0.0 (-> 1.0), t0 = 0.0, one
     check at 0.5 (runs the op), exit check at 2.0, t1 = 2.0: exactly
     one batched call, denominator 2.0 measured seconds. *)
  let now = scripted_clock [| 0.0; 0.0; 0.5; 2.0; 2.0 |] in
  let hist = [| Obs.Histogram.create () |] in
  let calls = ref 0 in
  let rate =
    Harness.Throughput.run_batched_latency ~now ~domains:1 ~seconds:1.0
      ~batch:4 ~hist
      ~op:(fun _ _ -> incr calls)
      ()
  in
  Alcotest.(check int) "one batched call" 1 !calls;
  Alcotest.(check int) "one latency sample" 1 (Obs.Histogram.count hist.(0));
  Alcotest.(check (float 1e-9)) "ops / measured elapsed" 2.0 rate

let test_run_batched_latency_measured_window () =
  (* multi-domain latency path: the window clock is scripted (t0, t1 are
     the only now() calls), the per-op latencies still come from the
     monotonic clock.  The rate times the scripted elapsed must recover
     exactly the published operation count, and every batched call must
     have recorded one histogram sample. *)
  let now = scripted_clock [| 10.0; 12.5 |] in
  let batch = 4 in
  let calls = Atomic.make 0 in
  let sleep _ =
    while Atomic.get calls < 8 do
      Domain.cpu_relax ()
    done
  in
  let hist = Array.init 2 (fun _ -> Obs.Histogram.create ()) in
  let rate =
    Harness.Throughput.run_batched_latency ~now ~sleep ~domains:2
      ~seconds:99.0 ~batch ~hist
      ~op:(fun _ _ -> Atomic.incr calls)
      ()
  in
  let calls = Atomic.get calls in
  Alcotest.(check bool) "workers made progress" true (calls > 0);
  Alcotest.(check (float 1e-6)) "ops / measured elapsed"
    (float_of_int (batch * calls))
    (rate *. 2.5);
  Alcotest.(check int) "one latency sample per batched call" calls
    (Obs.Histogram.count hist.(0) + Obs.Histogram.count hist.(1))

(* {1 Tables} *)

let test_table_render () =
  let out =
    Harness.Tables.render ~title:"T" ~header:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "has title" true
    (String.length out > 0 && String.sub out 0 4 = "## T");
  (* all data rows present *)
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains out needle))
    [ "| a "; "| bb"; "| 333" ]

let test_table_ragged_rows () =
  (* short rows are padded, long headers accommodated *)
  let out =
    Harness.Tables.render ~title:"T" ~header:[ "col" ] [ [ "x"; "extra" ] ]
  in
  Alcotest.(check bool) "renders" true (String.length out > 0)

(* {1 Baseline diffing: asymmetric rows must be visible, not skipped} *)

module B = Benchkit.Baseline
module J = Obs.Json_out

let entry ~structure ~impl ?(backend = "native") ?(domains = 1)
    ?(read_pct = 50) ~mops () =
  { B.structure; impl; backend; domains; read_pct; mops }

let doc_of_entries es =
  J.Obj
    [ ("schema", J.Str "bench-native/v4");
      ( "rows",
        J.List
          (List.map
             (fun (e : B.entry) ->
               J.Obj
                 [ ("structure", J.Str e.structure);
                   ("impl", J.Str e.impl);
                   ("backend", J.Str e.backend);
                   ("domains", J.Int e.domains);
                   ("read_pct", J.Int e.read_pct);
                   ("mops", J.Float e.mops) ])
             es) ) ]

(* regression: rows present on only one side used to vanish without a
   trace from [diff] — with fully disjoint row sets the report claimed
   "0/1 rows matched" and nothing else.  Both sides must now be
   reported, warn-only. *)
let test_baseline_disjoint_rows_warn () =
  let base = [ entry ~structure:"counter" ~impl:"farray" ~mops:10. () ] in
  let cur = [ entry ~structure:"maxreg" ~impl:"cas" ~mops:20. () ] in
  let d = B.diff ~baseline:base ~current:cur in
  Alcotest.(check int) "no matches" 0 (List.length d.B.matched);
  Alcotest.(check int) "baseline-only counted" 1
    (List.length d.B.baseline_only);
  Alcotest.(check int) "current-only counted" 1 (List.length d.B.current_only);
  let a =
    B.analyze ~baseline:(doc_of_entries base) ~current:(doc_of_entries cur) ()
  in
  let mentions sub =
    List.exists
      (fun w ->
        let n = String.length w and m = String.length sub in
        let rec go i = i + m <= n && (String.sub w i m = sub || go (i + 1)) in
        go 0)
      a.B.warnings
  in
  Alcotest.(check bool) "baseline-only row warned about" true
    (mentions "only in the baseline");
  Alcotest.(check bool) "current-only row warned about" true
    (mentions "only in the current run");
  Alcotest.(check bool) "named in the warning" true
    (mentions "counter/farray" && mentions "maxreg/cas");
  Alcotest.(check int) "still warn-only: no regressions" 0
    (B.regression_count a)

let test_baseline_bad_mops_warn () =
  (* a matched key whose baseline mops is 0 or non-finite is unusable
     for a ratio, but must be flagged rather than skipped *)
  let base = [ entry ~structure:"counter" ~impl:"farray" ~mops:0. () ] in
  let cur = [ entry ~structure:"counter" ~impl:"farray" ~mops:20. () ] in
  let d = B.diff ~baseline:base ~current:cur in
  Alcotest.(check int) "no matches" 0 (List.length d.B.matched);
  Alcotest.(check int) "bad baseline counted" 1 (List.length d.B.bad_baseline);
  Alcotest.(check int) "not misreported as baseline-only" 0
    (List.length d.B.baseline_only)

let test_baseline_symmetric_rows_quiet () =
  (* identical key sets must not trip the asymmetry warnings *)
  let base = [ entry ~structure:"counter" ~impl:"farray" ~mops:10. () ] in
  let cur = [ entry ~structure:"counter" ~impl:"farray" ~mops:11. () ] in
  let d = B.diff ~baseline:base ~current:cur in
  Alcotest.(check int) "matched" 1 (List.length d.B.matched);
  Alcotest.(check int) "no baseline-only" 0 (List.length d.B.baseline_only);
  Alcotest.(check int) "no current-only" 0 (List.length d.B.current_only);
  Alcotest.(check int) "no bad baseline" 0 (List.length d.B.bad_baseline)

let () =
  Alcotest.run "harness"
    [ ( "counting memory",
        [ Alcotest.test_case "counts primitives" `Quick test_counting_memory;
          Alcotest.test_case "isolated instances" `Quick test_counting_wrapper_is_isolated;
          Alcotest.test_case "agrees with sim" `Quick test_counting_agrees_with_sim ] );
      ( "measure",
        [ Alcotest.test_case "steps" `Quick test_measure_steps;
          Alcotest.test_case "max_steps" `Quick test_measure_max_steps;
          Alcotest.test_case "powers" `Quick test_measure_powers ] );
      ( "stats",
        [ Alcotest.test_case "summary" `Quick test_stats;
          Alcotest.test_case "single sample" `Quick test_stats_single;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "non-finite dropped" `Quick
            test_stats_nonfinite_dropped;
          Alcotest.test_case "ints" `Quick test_stats_ints ] );
      ( "throughput window",
        [ Alcotest.test_case "run_alone measured elapsed" `Quick
            test_run_alone_measured_window;
          Alcotest.test_case "run_batched measured elapsed" `Quick
            test_run_batched_measured_window;
          Alcotest.test_case "latency runner (1 domain) measured elapsed"
            `Quick test_run_batched_latency_alone_window;
          Alcotest.test_case "latency runner measured elapsed" `Quick
            test_run_batched_latency_measured_window ] );
      ( "tables",
        [ Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows ] );
      ( "baseline",
        [ Alcotest.test_case "disjoint rows warn both ways" `Quick
            test_baseline_disjoint_rows_warn;
          Alcotest.test_case "unusable baseline mops warns" `Quick
            test_baseline_bad_mops_warn;
          Alcotest.test_case "symmetric rows stay quiet" `Quick
            test_baseline_symmetric_rows_quiet ] ) ]
