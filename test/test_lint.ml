(* The linter's own test suite.

   Two layers:
   - fixture tests: run the rules over test/lint_fixtures/ (built with
     warnings off; every file deliberately violates one rule) with a
     config that scopes to that directory, and compare against golden
     diagnostics;
   - the meta-test: the repo itself must be lint-clean under the
     default config, so a violation anywhere in lib/bin/bench fails
     [dune runtest], not just the CI lint job. *)

(* dune runs tests from _build/default/test; walk up to the directory
   holding dune-project to find both the repo root and the build dir. *)
let repo_root =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then failwith "test_lint: repo root not found"
      else up parent
  in
  up (Sys.getcwd ())

let fixture_dir = "test/lint_fixtures"

let fixture_build_dir =
  Filename.concat repo_root ("_build/default/" ^ fixture_dir)

let fixture_config =
  { Lint.Config.default with
    scope_dirs = [ fixture_dir ];
    r1_allow =
      [ Lint.Config.Module_path [ "R1_split"; "Unboxed" ];
        (* whole-file allow, the shape the default config uses for
           lib/smem and lib/harness/throughput.ml *)
        Lint.Config.Dir (fixture_dir ^ "/r1_dir_ok.ml") ];
    r2_dirs = [ fixture_dir ];
    r3_targets =
      [ { qual = [ "R3_bad"; "hot" ]; mode = Lint.Config.Body };
        { qual = [ "R3_bad"; "loops" ]; mode = Lint.Config.Loops } ];
    r4_dirs = [ fixture_dir ];
    r4_allow = [] }

let run_fixtures ?rules () =
  Lint.Driver.run ~config:fixture_config ?rules
    ~build_dir:fixture_build_dir ~root:repo_root ()

let by_rule rule (r : Lint.Driver.report) =
  List.filter (fun d -> d.Lint.Diagnostic.rule = rule) r.diagnostics

let in_file file ds =
  List.filter (fun d -> d.Lint.Diagnostic.file = file) ds

(* ------------------------------------------------------------------ *)

let test_fixtures_built () =
  let r = run_fixtures () in
  Alcotest.(check bool)
    "fixture cmts found (build @default before runtest)" true
    (r.units_scanned >= 4)

let test_r1_flags_raw_primitives () =
  let ds = by_rule "R1" (run_fixtures ~rules:[ "R1" ] ()) in
  let bad = in_file (fixture_dir ^ "/r1_bad.ml") ds in
  (* Atomic.make, Atomic.incr, the Atomic.t type, the module alias,
     Domain.self *)
  Alcotest.(check int) "r1_bad violation count" 5 (List.length bad);
  let lines = List.map (fun d -> d.Lint.Diagnostic.line) bad in
  Alcotest.(check (list int)) "r1_bad violation lines" [ 4; 6; 8; 10; 12 ]
    lines

let test_r1_submodule_allowlist () =
  let ds = by_rule "R1" (run_fixtures ~rules:[ "R1" ] ()) in
  let split = in_file (fixture_dir ^ "/r1_split.ml") ds in
  (* everything inside Unboxed is allowlisted; only [stray] trips *)
  Alcotest.(check int) "r1_split violation count" 1 (List.length split);
  Alcotest.(check int) "r1_split violation line" 11
    (List.hd split).Lint.Diagnostic.line

let test_r1_dir_allowlist () =
  let ds = by_rule "R1" (run_fixtures ~rules:[ "R1" ] ()) in
  let ok = in_file (fixture_dir ^ "/r1_dir_ok.ml") ds in
  (* the Dir entry short-circuits the whole file: toplevel Atomic and
     the nested Domain.self alike *)
  Alcotest.(check int) "r1_dir_ok violation count" 0 (List.length ok)

let test_r2_spin_and_stale_retry () =
  let ds = by_rule "R2" (run_fixtures ~rules:[ "R2" ] ()) in
  let bad = in_file (fixture_dir ^ "/r2_bad.ml") ds in
  Alcotest.(check int) "r2_bad violation count" 2 (List.length bad);
  let lines = List.map (fun d -> d.Lint.Diagnostic.line) bad in
  (* [spin]'s while-true and [retry]'s binding; [ok_spin] (line 19+)
     re-reads and stays silent *)
  Alcotest.(check (list int)) "r2_bad violation lines" [ 11; 15 ] lines

let test_r3_hot_path_allocations () =
  let ds = by_rule "R3" (run_fixtures ~rules:[ "R3" ] ()) in
  let bad = in_file (fixture_dir ^ "/r3_bad.ml") ds in
  let lines =
    List.sort_uniq Int.compare
      (List.map (fun d -> d.Lint.Diagnostic.line) bad)
  in
  (* [hot]'s Some (line 10) and the list literal in [loops]'s while
     body (line 20); [unchecked] (line 12) and the epilogue list
     (line 22) stay silent *)
  Alcotest.(check (list int)) "r3_bad violation lines" [ 10; 20 ] lines

let test_r4_missing_interfaces () =
  let ds = by_rule "R4" (run_fixtures ~rules:[ "R4" ] ()) in
  let files = List.map (fun d -> d.Lint.Diagnostic.file) ds in
  Alcotest.(check (list string)) "r4 flags every fixture module"
    [ fixture_dir ^ "/r1_bad.ml";
      fixture_dir ^ "/r1_dir_ok.ml";
      fixture_dir ^ "/r1_split.ml";
      fixture_dir ^ "/r2_bad.ml";
      fixture_dir ^ "/r3_bad.ml" ]
    files

(* Golden rendering: the full human report for the fixture tree, pinned
   in test/lint_fixtures/expected.golden.  Catches drift in message
   wording, ordering, dedup, and the file:line:col format that CI logs
   and editors rely on.  Regenerate with LINT_GOLDEN_UPDATE=1 after an
   intentional change, and review the diff like any other code. *)
let golden_path =
  Filename.concat repo_root (fixture_dir ^ "/expected.golden")

let test_golden_human_output () =
  let actual = Lint.Driver.to_human (run_fixtures ()) in
  if Sys.getenv_opt "LINT_GOLDEN_UPDATE" = Some "1" then begin
    let oc = open_out golden_path in
    output_string oc actual;
    close_out oc
  end;
  let ic = open_in_bin golden_path in
  let expected = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string)
    "golden diagnostics (LINT_GOLDEN_UPDATE=1 to regenerate)" expected
    actual

let test_json_shape () =
  let j = Lint.Driver.to_json (run_fixtures ()) in
  match Obs.Json_out.member "schema" j with
  | Some (Obs.Json_out.Str "lint/v1") -> (
    match Obs.Json_out.member "diagnostics" j with
    | Some (Obs.Json_out.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "diagnostics array missing/empty")
  | _ -> Alcotest.fail "schema tag missing"

(* ------------------------------------------------------------------ *)

let test_repo_is_lint_clean () =
  let r =
    Lint.Driver.run
      ~build_dir:(Filename.concat repo_root "_build/default")
      ~root:repo_root ()
  in
  Alcotest.(check (list string)) "repo lints clean" []
    (List.map Lint.Diagnostic.to_human r.diagnostics)

let () =
  Alcotest.run "lint"
    [ ("fixtures",
       [ Alcotest.test_case "cmts built" `Quick test_fixtures_built;
         Alcotest.test_case "R1 raw primitives" `Quick
           test_r1_flags_raw_primitives;
         Alcotest.test_case "R1 submodule allowlist" `Quick
           test_r1_submodule_allowlist;
         Alcotest.test_case "R1 whole-file Dir allowlist" `Quick
           test_r1_dir_allowlist;
         Alcotest.test_case "R2 spin + stale retry" `Quick
           test_r2_spin_and_stale_retry;
         Alcotest.test_case "R3 hot-path allocation" `Quick
           test_r3_hot_path_allocations;
         Alcotest.test_case "R4 missing interfaces" `Quick
           test_r4_missing_interfaces;
         Alcotest.test_case "golden human output" `Quick
           test_golden_human_output;
         Alcotest.test_case "json shape" `Quick test_json_shape ]);
      ("meta", [ Alcotest.test_case "repo lint-clean" `Quick
                   test_repo_is_lint_clean ]) ]
