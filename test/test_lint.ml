(* The linter's own test suite.

   Two layers:
   - fixture tests: run the rules over test/lint_fixtures/ (built with
     warnings off; every file deliberately violates one rule) with a
     config that scopes to that directory, and compare against golden
     diagnostics;
   - the meta-test: the repo itself must be lint-clean under the
     default config, so a violation anywhere in lib/bin/bench fails
     [dune runtest], not just the CI lint job. *)

(* dune runs tests from _build/default/test; walk up to the directory
   holding dune-project to find both the repo root and the build dir. *)
let repo_root =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then failwith "test_lint: repo root not found"
      else up parent
  in
  up (Sys.getcwd ())

let fixture_dir = "test/lint_fixtures"

let fixture_build_dir =
  Filename.concat repo_root ("_build/default/" ^ fixture_dir)

let fixture_config =
  { Lint.Config.default with
    scope_dirs = [ fixture_dir ];
    r1_allow =
      [ Lint.Config.Module_path [ "R1_split"; "Unboxed" ];
        (* whole-file allow, the shape the default config uses for
           lib/smem and lib/harness/throughput.ml *)
        Lint.Config.Dir (fixture_dir ^ "/r1_dir_ok.ml");
        (* the C1 fixtures violate cost budgets, not containment *)
        Lint.Config.Dir (fixture_dir ^ "/c1_over.ml");
        Lint.Config.Dir (fixture_dir ^ "/c1_unbounded.ml");
        Lint.Config.Dir (fixture_dir ^ "/c1_chain.ml") ];
    r2_dirs = [ fixture_dir ];
    r3_targets =
      [ { qual = [ "R3_bad"; "hot" ]; mode = Lint.Config.Body };
        { qual = [ "R3_bad"; "loops" ]; mode = Lint.Config.Loops } ];
    r4_dirs = [ fixture_dir ];
    r4_allow = [] }

(* The fixture budget table: each row names an op in a c1_* fixture.
   [within]'s budget is deliberately a class too loose, so the run also
   exercises the warn-severity "improvable" diagnostic. *)
let fixture_budgets =
  { Lint.Budgets.rows =
      [ { op = [ "C1_over"; "over" ];
          budget = Lint.Summary.Const 2;
          reason = "fixture: two loads allowed" };
        { op = [ "C1_over"; "within" ];
          budget = Lint.Summary.Log;
          reason = "fixture: deliberately loose" };
        { op = [ "C1_unbounded"; "chase" ];
          budget = Lint.Summary.Log;
          reason = "fixture: claimed log bound, unannotated recursion" };
        { op = [ "C1_unbounded"; "blind_walk" ];
          budget = Lint.Summary.Log;
          reason = "fixture: annotated recursion without a witness" };
        { op = [ "C1_chain"; "deep_read" ];
          budget = Lint.Summary.Const 4;
          reason = "fixture: interprocedural chain fits" };
        { op = [ "C1_chain"; "deep_wide" ];
          budget = Lint.Summary.Const 3;
          reason = "fixture: interprocedural chain exceeds" } ];
    recursion = [ ([ "C1_unbounded"; "blind_walk" ], Lint.Summary.Log) ];
    const_bounds = [];
    memory_params = [];
    instrumentation_roots = [] }

let run_fixtures ?rules () =
  Lint.Driver.run ~config:fixture_config ~budgets:fixture_budgets ?rules
    ~build_dir:fixture_build_dir ~root:repo_root ()

let by_rule rule (r : Lint.Driver.report) =
  List.filter (fun d -> d.Lint.Diagnostic.rule = rule) r.diagnostics

let in_file file ds =
  List.filter (fun d -> d.Lint.Diagnostic.file = file) ds

(* ------------------------------------------------------------------ *)

let test_fixtures_built () =
  let r = run_fixtures () in
  Alcotest.(check bool)
    "fixture cmts found (build @default before runtest)" true
    (r.units_scanned >= 4)

let test_r1_flags_raw_primitives () =
  let ds = by_rule "R1" (run_fixtures ~rules:[ "R1" ] ()) in
  let bad = in_file (fixture_dir ^ "/r1_bad.ml") ds in
  (* Atomic.make, Atomic.incr, the Atomic.t type, the module alias,
     Domain.self *)
  Alcotest.(check int) "r1_bad violation count" 5 (List.length bad);
  let lines = List.map (fun d -> d.Lint.Diagnostic.line) bad in
  Alcotest.(check (list int)) "r1_bad violation lines" [ 4; 6; 8; 10; 12 ]
    lines

let test_r1_submodule_allowlist () =
  let ds = by_rule "R1" (run_fixtures ~rules:[ "R1" ] ()) in
  let split = in_file (fixture_dir ^ "/r1_split.ml") ds in
  (* everything inside Unboxed is allowlisted; only [stray] trips *)
  Alcotest.(check int) "r1_split violation count" 1 (List.length split);
  Alcotest.(check int) "r1_split violation line" 11
    (List.hd split).Lint.Diagnostic.line

let test_r1_dir_allowlist () =
  let ds = by_rule "R1" (run_fixtures ~rules:[ "R1" ] ()) in
  let ok = in_file (fixture_dir ^ "/r1_dir_ok.ml") ds in
  (* the Dir entry short-circuits the whole file: toplevel Atomic and
     the nested Domain.self alike *)
  Alcotest.(check int) "r1_dir_ok violation count" 0 (List.length ok)

let test_r2_spin_and_stale_retry () =
  let ds = by_rule "R2" (run_fixtures ~rules:[ "R2" ] ()) in
  let bad = in_file (fixture_dir ^ "/r2_bad.ml") ds in
  Alcotest.(check int) "r2_bad violation count" 2 (List.length bad);
  let lines = List.map (fun d -> d.Lint.Diagnostic.line) bad in
  (* [spin]'s while-true and [retry]'s binding; [ok_spin] (line 19+)
     re-reads and stays silent *)
  Alcotest.(check (list int)) "r2_bad violation lines" [ 11; 15 ] lines

let test_r3_hot_path_allocations () =
  let ds = by_rule "R3" (run_fixtures ~rules:[ "R3" ] ()) in
  let bad = in_file (fixture_dir ^ "/r3_bad.ml") ds in
  let lines =
    List.sort_uniq Int.compare
      (List.map (fun d -> d.Lint.Diagnostic.line) bad)
  in
  (* [hot]'s Some (line 10) and the list literal in [loops]'s while
     body (line 20); [unchecked] (line 12) and the epilogue list
     (line 22) stay silent *)
  Alcotest.(check (list int)) "r3_bad violation lines" [ 10; 20 ] lines

let test_r4_missing_interfaces () =
  let ds = by_rule "R4" (run_fixtures ~rules:[ "R4" ] ()) in
  let files = List.map (fun d -> d.Lint.Diagnostic.file) ds in
  Alcotest.(check (list string)) "r4 flags every fixture module"
    [ fixture_dir ^ "/c1_chain.ml";
      fixture_dir ^ "/c1_over.ml";
      fixture_dir ^ "/c1_unbounded.ml";
      fixture_dir ^ "/r1_bad.ml";
      fixture_dir ^ "/r1_dir_ok.ml";
      fixture_dir ^ "/r1_split.ml";
      fixture_dir ^ "/r2_bad.ml";
      fixture_dir ^ "/r3_bad.ml" ]
    files

(* ------------------------------------------------------------------ *)
(* C1: the step-complexity certifier over the c1_* fixtures            *)

let test_c1_violations () =
  let r = run_fixtures ~rules:[ "C1" ] () in
  let ds = by_rule "C1" r in
  let errors =
    List.filter
      (fun d -> d.Lint.Diagnostic.severity = Lint.Diagnostic.Error)
      ds
  in
  let places =
    List.map
      (fun d -> (d.Lint.Diagnostic.file, d.Lint.Diagnostic.line))
      errors
  in
  (* deep_wide's 4 loads over its budget of 3; over's 3 loads over its
     budget of 2; chase's unannotated recursion; blind_walk's refused
     (witness-free) annotation *)
  Alcotest.(check (list (pair string int)))
    "c1 error sites"
    [ (fixture_dir ^ "/c1_chain.ml", 11);
      (fixture_dir ^ "/c1_over.ml", 8);
      (fixture_dir ^ "/c1_unbounded.ml", 7);
      (fixture_dir ^ "/c1_unbounded.ml", 11) ]
    places

let test_c1_warn_does_not_fail () =
  let r = run_fixtures ~rules:[ "C1" ] () in
  let warns =
    List.filter
      (fun d -> d.Lint.Diagnostic.severity = Lint.Diagnostic.Warn)
      (by_rule "C1" r)
  in
  (* [within] is Const 2 under a Log budget: improvable, warn-only *)
  Alcotest.(check (list (pair string int)))
    "c1 warn sites"
    [ (fixture_dir ^ "/c1_over.ml", 10) ]
    (List.map
       (fun d -> (d.Lint.Diagnostic.file, d.Lint.Diagnostic.line))
       warns);
  let errors_only =
    List.filter
      (fun (d : Lint.Diagnostic.t) -> d.severity = Lint.Diagnostic.Error)
      r.diagnostics
  in
  Alcotest.(check bool) "warns excluded from errors" true
    (List.length errors_only < List.length r.diagnostics)

let test_c1_interprocedural_chain () =
  let r = run_fixtures ~rules:[ "C1" ] () in
  match r.cost with
  | None -> Alcotest.fail "C1 run produced no cost report"
  | Some c ->
    let find op =
      List.find_opt (fun (o : Lint.Cost.op_report) -> o.op = op) c.ops
    in
    (match find [ "C1_chain"; "deep_read" ] with
     | Some { status = Lint.Cost.Certified; summary = Some s; _ } ->
       (* exactly the two loads, counted through two helper frames *)
       Alcotest.(check string) "deep_read total" "<= 2"
         (Lint.Summary.bound_to_string (Lint.Summary.total s))
     | _ -> Alcotest.fail "deep_read not certified");
    (match find [ "C1_chain"; "deep_wide" ] with
     | Some { status = Lint.Cost.Violation; summary = Some s; _ } ->
       Alcotest.(check string) "deep_wide total" "<= 4"
         (Lint.Summary.bound_to_string (Lint.Summary.total s))
     | _ -> Alcotest.fail "deep_wide not a violation")

let test_c1_cost_json_shape () =
  let r = run_fixtures ~rules:[ "C1" ] () in
  match r.cost with
  | None -> Alcotest.fail "C1 run produced no cost report"
  | Some c -> (
    let j = Lint.Cost.to_json ~units_scanned:r.units_scanned c in
    match Obs.Json_out.member "schema" j with
    | Some (Obs.Json_out.Str "lint-cost/v1") -> (
      match Obs.Json_out.member "ops" j with
      | Some (Obs.Json_out.List ops) ->
        Alcotest.(check int) "one entry per budget row" 6
          (List.length ops)
      | _ -> Alcotest.fail "ops array missing")
    | _ -> Alcotest.fail "schema tag missing")

(* Golden rendering: the full human report for the fixture tree, pinned
   in test/lint_fixtures/expected.golden.  Catches drift in message
   wording, ordering, dedup, and the file:line:col format that CI logs
   and editors rely on.  Regenerate with LINT_GOLDEN_UPDATE=1 after an
   intentional change, and review the diff like any other code. *)
let golden_path =
  Filename.concat repo_root (fixture_dir ^ "/expected.golden")

let test_golden_human_output () =
  let actual = Lint.Driver.to_human (run_fixtures ()) in
  if Sys.getenv_opt "LINT_GOLDEN_UPDATE" = Some "1" then begin
    let oc = open_out golden_path in
    output_string oc actual;
    close_out oc
  end;
  let ic = open_in_bin golden_path in
  let expected = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string)
    "golden diagnostics (LINT_GOLDEN_UPDATE=1 to regenerate)" expected
    actual

let test_json_shape () =
  let j = Lint.Driver.to_json (run_fixtures ()) in
  match Obs.Json_out.member "schema" j with
  | Some (Obs.Json_out.Str "lint/v1") -> (
    match Obs.Json_out.member "diagnostics" j with
    | Some (Obs.Json_out.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "diagnostics array missing/empty")
  | _ -> Alcotest.fail "schema tag missing"

(* ------------------------------------------------------------------ *)

let test_repo_is_lint_clean () =
  let r =
    Lint.Driver.run
      ~build_dir:(Filename.concat repo_root "_build/default")
      ~root:repo_root ()
  in
  Alcotest.(check (list string)) "repo lints clean" []
    (List.map Lint.Diagnostic.to_human r.diagnostics)

let () =
  Alcotest.run "lint"
    [ ("fixtures",
       [ Alcotest.test_case "cmts built" `Quick test_fixtures_built;
         Alcotest.test_case "R1 raw primitives" `Quick
           test_r1_flags_raw_primitives;
         Alcotest.test_case "R1 submodule allowlist" `Quick
           test_r1_submodule_allowlist;
         Alcotest.test_case "R1 whole-file Dir allowlist" `Quick
           test_r1_dir_allowlist;
         Alcotest.test_case "R2 spin + stale retry" `Quick
           test_r2_spin_and_stale_retry;
         Alcotest.test_case "R3 hot-path allocation" `Quick
           test_r3_hot_path_allocations;
         Alcotest.test_case "R4 missing interfaces" `Quick
           test_r4_missing_interfaces;
         Alcotest.test_case "C1 budget violations" `Quick
           test_c1_violations;
         Alcotest.test_case "C1 warn severity" `Quick
           test_c1_warn_does_not_fail;
         Alcotest.test_case "C1 interprocedural chain" `Quick
           test_c1_interprocedural_chain;
         Alcotest.test_case "C1 cost json shape" `Quick
           test_c1_cost_json_shape;
         Alcotest.test_case "golden human output" `Quick
           test_golden_human_output;
         Alcotest.test_case "json shape" `Quick test_json_shape ]);
      ("meta", [ Alcotest.test_case "repo lint-clean" `Quick
                   test_repo_is_lint_clean ]) ]
