(* Tests for the executable lower-bound adversaries (Theorems 1 and 3). *)

let counter_factory impl session ~n =
  Harness.Instances.counter_sim session ~n ~bound:(4 * n) impl

let maxreg_factory impl session ~n =
  Harness.Instances.maxreg_sim session ~n ~bound:(2 * n) impl

let t1 ?(f_n = 1) impl ~n =
  Lowerbound.Theorem1.run
    ~impl:(Harness.Instances.counter_name impl)
    ~make_counter:(counter_factory impl) ~n ~f_n ()

(* {1 Theorem 1} *)

let test_t1_farray () =
  let r = t1 Harness.Instances.Farray_counter ~n:32 ~f_n:1 in
  (* all increments completed and the read is correct *)
  Alcotest.(check int) "read counts all" 31 r.reader_result;
  (* f-array read is a single step *)
  Alcotest.(check int) "read O(1)" 1 r.reader_steps;
  (* the sigma-adversary forces at least the predicted number of rounds *)
  Alcotest.(check bool)
    (Printf.sprintf "rounds %d >= predicted %.2f" r.rounds r.predicted_rounds)
    true
    (float_of_int r.rounds >= r.predicted_rounds);
  Alcotest.(check bool) "lemma 1: M grows <= 3x/round" true r.lemma1_ok;
  Alcotest.(check bool) "lemma 3: reader aware of all" true r.lemma3_ok

let test_t1_naive () =
  (* Read O(N) counter: the tradeoff allows O(1) increments; the adversary
     cannot stretch them. *)
  let r = t1 Harness.Instances.Naive_counter ~n:32 ~f_n:32 in
  Alcotest.(check int) "read counts all" 31 r.reader_result;
  Alcotest.(check int) "increments are 2 steps" 2 r.max_inc_steps;
  Alcotest.(check int) "rounds = 2" 2 r.rounds;
  Alcotest.(check bool) "lemma 3 still holds" true r.lemma3_ok

let test_t1_aac () =
  let n = 32 in
  let f_n = 8 in
  let r = t1 Harness.Instances.Aac_counter ~n ~f_n in
  Alcotest.(check int) "read counts all" (n - 1) r.reader_result;
  Alcotest.(check bool) "lemma 1" true r.lemma1_ok;
  Alcotest.(check bool) "lemma 3 (repaired visibility)" true r.lemma3_ok

let test_t1_snapshot_counter () =
  (* Corollary 1: the adversary applies verbatim to a counter built from a
     snapshot. *)
  let r =
    t1 (Harness.Instances.Snapshot_counter Harness.Instances.Farray_snapshot)
      ~n:16 ~f_n:1
  in
  Alcotest.(check int) "read counts all" 15 r.reader_result;
  Alcotest.(check bool) "lemma 1" true r.lemma1_ok;
  Alcotest.(check bool) "lemma 3" true r.lemma3_ok

let test_t1_rounds_grow_with_n () =
  (* For the read-optimal (f = O(1)) counter, adversarial rounds must grow
     ~ log N: the tradeoff's shape. *)
  let rounds n = (t1 Harness.Instances.Farray_counter ~n ~f_n:1).rounds in
  let r8 = rounds 8 and r32 = rounds 32 and r128 = rounds 128 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %d <= %d <= %d" r8 r32 r128)
    true
    (r8 <= r32 && r32 <= r128);
  Alcotest.(check bool) "strict growth over the range" true (r128 > r8);
  (* growth is logarithmic-ish, not linear in N *)
  Alcotest.(check bool)
    (Printf.sprintf "sub-linear: %d < 8 + %d" r128 r8)
    true
    (r128 <= 16 * r8)

let test_t1_m_growth_profile () =
  let r = t1 Harness.Instances.Farray_counter ~n:64 ~f_n:1 in
  (* M after the final round must have reached N (Lemma 3 forces full
     awareness), and per-round growth never exceeded 3x. *)
  (* by the last round the root must be familiar with every incrementer
     (n-1 of them); the reader then reaches full awareness (lemma 3) *)
  let final_m = List.fold_left max 1 r.m_per_round in
  Alcotest.(check bool)
    (Printf.sprintf "final M %d >= n-1" final_m)
    true (final_m >= 63);
  Alcotest.(check int) "reader awareness = n" 64 r.reader_awareness;
  Alcotest.(check bool) "3x bound" true r.lemma1_ok

(* {1 Theorem 3} *)

let t3 ?(f_k = 1) impl ~k =
  Lowerbound.Theorem3.run
    ~impl:(Harness.Instances.maxreg_name impl)
    ~make_maxreg:(maxreg_factory impl) ~k ~f_k ()

let check_invariants (r : Lowerbound.Theorem3.result) =
  List.iter
    (fun (it : Lowerbound.Theorem3.iteration) ->
      Alcotest.(check bool)
        (Printf.sprintf "iteration %d hidden invariant" it.index)
        true it.hidden_ok;
      Alcotest.(check bool)
        (Printf.sprintf "iteration %d supreme invariant" it.index)
        true it.supreme_ok)
    r.iterations

let test_t3_algorithm_a () =
  let r = t3 Harness.Instances.Algorithm_a ~k:256 in
  Alcotest.(check bool) "at least 2 iterations" true (r.i_star >= 2);
  Alcotest.(check bool) "lemma 2: replays indistinguishable" true r.lemma2_ok;
  Alcotest.(check bool) "post-construction read correct" true r.final_read_ok;
  check_invariants r;
  (* essential sets shrink monotonically *)
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b && decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sizes decreasing" true (decreasing r.essential_sizes)

let test_t3_cas_maxreg () =
  let r = t3 Harness.Instances.Cas_maxreg ~k:128 in
  Alcotest.(check bool) "lemma 2" true r.lemma2_ok;
  Alcotest.(check bool) "final read" true r.final_read_ok;
  check_invariants r

let test_t3_aac_maxreg () =
  let r = t3 Harness.Instances.Aac_maxreg ~k:128 ~f_k:7 in
  Alcotest.(check bool) "lemma 2" true r.lemma2_ok;
  Alcotest.(check bool) "final read" true r.final_read_ok;
  check_invariants r

let test_t3_iterations_grow_with_k () =
  let i_star k = (t3 Harness.Instances.Algorithm_a ~k).i_star in
  let i32 = i_star 32 and i1024 = i_star 1024 in
  Alcotest.(check bool)
    (Printf.sprintf "i*(1024)=%d >= i*(32)=%d" i1024 i32)
    true (i1024 >= i32);
  Alcotest.(check bool) "nontrivial at 1024" true (i1024 >= 3)

let test_t3_first_essential_set_is_sqrt () =
  (* Iteration 0 is low contention (distinct leaves), so |E_1| ~ sqrt K. *)
  let r = t3 Harness.Instances.Algorithm_a ~k:1024 in
  match r.essential_sizes with
  | e1 :: _ ->
    Alcotest.(check bool) (Printf.sprintf "|E_1| = %d ~ 31" e1) true
      (e1 >= 20 && e1 <= 32)
  | [] -> Alcotest.fail "no iterations"

let test_t3_uncapped_stretches_writes () =
  (* Without the proof's sqrt-thinning the adversary stretches Algorithm
     A's WriteMax towards its full O(log K) length while all invariants
     still hold. *)
  let r =
    Lowerbound.Theorem3.run ~sqrt_cap:false
      ~impl:"algorithm-a"
      ~make_maxreg:(maxreg_factory Harness.Instances.Algorithm_a) ~k:256
      ~f_k:1 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "i* = %d is tens of steps" r.i_star)
    true (r.i_star >= 30);
  Alcotest.(check bool) "lemma 2" true r.lemma2_ok;
  Alcotest.(check bool) "final read" true r.final_read_ok;
  check_invariants r

let test_t3_essential_processes_step_per_iteration () =
  (* Each final essential process issued exactly i* events: re-run the
     final schedule and count. *)
  let r = t3 Harness.Instances.Algorithm_a ~k:256 in
  Alcotest.(check bool) "has final essential processes" true
    (r.final_essential <> [])

let () =
  Alcotest.run "lowerbound"
    [ ( "theorem 1",
        [ Alcotest.test_case "farray counter" `Quick test_t1_farray;
          Alcotest.test_case "naive counter" `Quick test_t1_naive;
          Alcotest.test_case "aac counter" `Quick test_t1_aac;
          Alcotest.test_case "snapshot counter (cor. 1)" `Quick test_t1_snapshot_counter;
          Alcotest.test_case "rounds grow with N" `Quick test_t1_rounds_grow_with_n;
          Alcotest.test_case "M growth profile" `Quick test_t1_m_growth_profile ] );
      ( "theorem 3",
        [ Alcotest.test_case "algorithm A" `Quick test_t3_algorithm_a;
          Alcotest.test_case "cas-loop register" `Quick test_t3_cas_maxreg;
          Alcotest.test_case "aac register" `Quick test_t3_aac_maxreg;
          Alcotest.test_case "iterations grow with K" `Quick test_t3_iterations_grow_with_k;
          Alcotest.test_case "first essential ~ sqrt K" `Quick test_t3_first_essential_set_is_sqrt;
          Alcotest.test_case "final essential nonempty" `Quick
            test_t3_essential_processes_step_per_iteration;
          Alcotest.test_case "uncapped mode stretches WriteMax" `Quick
            test_t3_uncapped_stretches_writes ] ) ]
