(* Tests for the observability layer (lib/obs): sharded metric counters,
   log-bucketed latency histograms, JSON round-tripping and the Chrome
   trace exporter — plus the zero-allocation guard for disabled
   instrumentation. *)

module H = Obs.Histogram
module M = Obs.Metrics
module J = Obs.Json_out

(* {1 Histogram: bucket geometry} *)

let test_bucket_bounds_small () =
  (* values below 32 are exact: bucket = value, width 1 *)
  for v = 0 to 31 do
    Alcotest.(check int) (Printf.sprintf "bucket of %d" v) v (H.bucket_of_value v);
    Alcotest.(check int) (Printf.sprintf "lower of %d" v) v
      (H.value_of_bucket (H.bucket_of_value v));
    Alcotest.(check int) (Printf.sprintf "width of %d" v) 1
      (H.bucket_width (H.bucket_of_value v))
  done

let qcheck_bucket_contains =
  QCheck.Test.make ~count:2000 ~name:"bucket_of_value lands v inside its bucket"
    QCheck.(map abs int)
    (fun v ->
      let b = H.bucket_of_value v in
      let lo = H.value_of_bucket b in
      let w = H.bucket_width b in
      b >= 0 && b < H.n_buckets && lo <= v
      && (v < lo + w || b = H.n_buckets - 1))

let qcheck_bucket_error =
  QCheck.Test.make ~count:2000
    ~name:"quantization error bounded by one sub-bucket (~3%)"
    QCheck.(map (fun i -> abs i) int)
    (fun v ->
      let b = H.bucket_of_value v in
      b = H.n_buckets - 1
      || float_of_int (H.bucket_width b) <= Float.max 1. (0.04 *. float_of_int v))

(* The round-trip bound the .mli documents: the bucket's lower bound
   never overshoots and never lags the value by more than one part in
   sub_count (= 32), over the FULL non-negative int range — exact in the
   linear region below 32, lower-bound-only in the clamping top
   bucket.  [i land max_int] covers the whole range without the
   [abs min_int] sign trap. *)
let qcheck_bucket_roundtrip =
  QCheck.Test.make ~count:4000
    ~name:"value_of_bucket (bucket_of_value v) within 1/32 of v"
    QCheck.(map (fun i -> i land max_int) int)
    (fun v ->
      let b = H.bucket_of_value v in
      let lo = H.value_of_bucket b in
      if v < 32 then lo = v
      else if b = H.n_buckets - 1 then lo <= v
      else
        lo <= v
        && float_of_int (v - lo) /. float_of_int v <= 1. /. 32.)

(* {1 Histogram: record / stats / percentiles} *)

let test_hist_exact_stats () =
  let h = H.create () in
  List.iter (H.record h) [ 5; 1; 9; 9; 3 ];
  Alcotest.(check int) "count" 5 (H.count h);
  Alcotest.(check int) "min" 1 (H.min_value h);
  Alcotest.(check int) "max" 9 (H.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 5.4 (H.mean h);
  (* all values < 32 are exact, so percentiles are too (modulo clamping) *)
  Alcotest.(check (float 1e-9)) "p0 = min" 1. (H.percentile h 0.);
  Alcotest.(check (float 1e-9)) "p100 = max" 9. (H.percentile h 100.);
  Alcotest.(check (float 1e-9)) "p50 = median" 5. (H.percentile h 50.)

let test_hist_empty () =
  let h = H.create () in
  Alcotest.(check int) "count" 0 (H.count h);
  Alcotest.(check int) "min" 0 (H.min_value h);
  Alcotest.(check int) "max" 0 (H.max_value h);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (H.mean h));
  (* regression: percentile on an empty histogram used to return nan,
     which poisons JSON rendering and every downstream comparison; it
     now reports 0 like min_value/max_value do *)
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%.0f empty = 0" p)
        0. (H.percentile h p))
    [ 0.; 50.; 95.; 99.; 100. ]

(* regression: a single sample in a wide log bucket must be reported
   exactly at every p — the bucket midpoint may lie below the sample and
   the bucket lower bound certainly does; the clamp to [min, max] is
   what guarantees exactness here. *)
let test_hist_single_sample () =
  let v = 1_000_003 in
  let h = H.create () in
  H.record h v;
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%.0f single = sample" p)
        (float_of_int v) (H.percentile h p))
    [ 0.; 1.; 50.; 95.; 99.; 100. ];
  Alcotest.(check bool)
    "bucket lower bound is below the sample (clamp is load-bearing)" true
    (H.value_of_bucket (H.bucket_of_value v) < v)

let test_hist_weird_p_clamps () =
  let h = H.create () in
  List.iter (H.record h) [ 2; 4; 6 ];
  Alcotest.(check (float 1e-9)) "p(-5) = p0" (H.percentile h 0.)
    (H.percentile h (-5.));
  Alcotest.(check (float 1e-9)) "p(250) = p100" (H.percentile h 100.)
    (H.percentile h 250.);
  Alcotest.(check (float 1e-9)) "p(nan) = p0" (H.percentile h 0.)
    (H.percentile h Float.nan)

let test_hist_negative_clamps () =
  let h = H.create () in
  H.record h (-17);
  Alcotest.(check int) "count" 1 (H.count h);
  Alcotest.(check int) "min" 0 (H.min_value h);
  Alcotest.(check int) "max" 0 (H.max_value h)

let hist_of_list vs =
  let h = H.create () in
  List.iter (H.record h) vs;
  h

let nonneg_list = QCheck.(list_of_size Gen.(1 -- 200) (map abs small_int))

let qcheck_percentile_monotone =
  QCheck.Test.make ~count:500 ~name:"percentiles monotone in p"
    QCheck.(pair nonneg_list (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
    (fun (vs, (p, q)) ->
      let h = hist_of_list vs in
      let p, q = (Float.min p q, Float.max p q) in
      H.percentile h p <= H.percentile h q)

let qcheck_percentile_in_range =
  QCheck.Test.make ~count:500 ~name:"percentiles within [min, max]"
    QCheck.(pair nonneg_list (float_bound_inclusive 100.))
    (fun (vs, p) ->
      let h = hist_of_list vs in
      let x = H.percentile h p in
      float_of_int (H.min_value h) <= x && x <= float_of_int (H.max_value h))

(* same invariant over wide log buckets, where midpoints sit far from
   the sample and only the clamp keeps the value inside [min, max] —
   singleton lists included so the single-sample case is fuzzed too *)
let qcheck_percentile_in_range_large =
  QCheck.Test.make ~count:300 ~name:"percentiles within [min, max] (large values)"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 40) (int_range 0 1_000_000_000))
        (float_bound_inclusive 100.))
    (fun (vs, p) ->
      let h = hist_of_list vs in
      let x = H.percentile h p in
      float_of_int (H.min_value h) <= x && x <= float_of_int (H.max_value h))

let qcheck_merge_commutes =
  QCheck.Test.make ~count:500 ~name:"merge commutes"
    QCheck.(pair nonneg_list nonneg_list)
    (fun (xs, ys) ->
      let a = H.merge (hist_of_list xs) (hist_of_list ys) in
      let b = H.merge (hist_of_list ys) (hist_of_list xs) in
      H.count a = H.count b
      && H.min_value a = H.min_value b
      && H.max_value a = H.max_value b
      && List.for_all
           (fun p -> H.percentile a p = H.percentile b p)
           [ 0.; 50.; 95.; 99.; 100. ])

let qcheck_merge_is_concat =
  QCheck.Test.make ~count:500 ~name:"merge == recording the concatenation"
    QCheck.(pair nonneg_list nonneg_list)
    (fun (xs, ys) ->
      let m = H.merge (hist_of_list xs) (hist_of_list ys) in
      let c = hist_of_list (xs @ ys) in
      H.count m = H.count c
      && H.min_value m = H.min_value c
      && H.max_value m = H.max_value c
      && Float.equal (H.mean m) (H.mean c)
      && List.for_all
           (fun p -> H.percentile m p = H.percentile c p)
           [ 0.; 25.; 50.; 95.; 100. ])

(* {1 Metrics: sharding, merge-on-read, reset} *)

let test_metrics_totals () =
  let m = M.create ~domains:3 () in
  M.incr m ~domain:0 M.Cas_attempt;
  M.incr m ~domain:1 M.Cas_attempt;
  M.incr m ~domain:2 M.Cas_attempt;
  M.incr m ~domain:1 M.Cas_failure;
  M.add m ~domain:2 M.Refresh_round 5;
  M.incr m ~domain:0 M.Help;
  M.incr m ~domain:0 M.Op_read;
  M.incr m ~domain:0 M.Op_update;
  let t = M.totals m in
  Alcotest.(check int) "cas attempts" 3 t.M.cas_attempts;
  Alcotest.(check int) "cas failures" 1 t.M.cas_failures;
  Alcotest.(check int) "refresh rounds" 5 t.M.refresh_rounds;
  Alcotest.(check int) "helps" 1 t.M.helps;
  Alcotest.(check int) "op reads" 1 t.M.op_reads;
  Alcotest.(check int) "op updates" 1 t.M.op_updates;
  Alcotest.(check (float 1e-9)) "failure rate" (1. /. 3.)
    (M.cas_failure_rate t);
  M.reset m;
  Alcotest.(check int) "reset" 0 (M.totals m).M.cas_attempts

let test_metrics_domain_folding () =
  (* shard count rounds up to a power of two; any domain index is valid
     and folds onto an existing shard without losing counts *)
  let m = M.create ~domains:3 () in
  for d = 0 to 40 do
    M.incr m ~domain:d M.Op_update
  done;
  Alcotest.(check int) "all counted" 41 (M.totals m).M.op_updates

let test_metrics_disabled () =
  Alcotest.(check bool) "disabled" false (M.enabled M.disabled);
  M.incr M.disabled ~domain:0 M.Cas_attempt;
  M.add M.disabled ~domain:7 M.Help 3;
  Alcotest.(check int) "stays zero" 0
    (M.total_of (M.totals M.disabled) M.Cas_attempt)

let test_metrics_totals_roundtrip () =
  let m = M.create ~domains:2 () in
  List.iter
    (fun c ->
      M.add m ~domain:0 c 2;
      M.add m ~domain:1 c 3)
    M.all_counters;
  let t = M.totals m in
  List.iter
    (fun c ->
      (* every counter sums across shards except Batch_max, which
         max-merges (a "largest batch" is not additive) *)
      let expect = if c = M.Batch_max then 3 else 5 in
      Alcotest.(check int) (M.counter_name c) expect (M.total_of t c))
    M.all_counters

(* {1 The zero-allocation guard}

   With the [disabled] handle every record site must be one
   immediate-bool branch: no allocation at all.  The enabled path is a
   padded-cell load + store, also allocation-free.  This is the
   deterministic core of the "instrumentation-overhead" acceptance
   criterion; dune runs tests without flambda, exactly like the bench
   builds, so what passes here holds for bin/bench.exe too. *)

let minor_words_during f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_disabled_record_allocates_nothing () =
  let record_many m () =
    for i = 0 to 9_999 do
      M.incr m ~domain:(i land 3) M.Cas_attempt;
      M.add m ~domain:(i land 3) M.Refresh_round 2
    done
  in
  record_many M.disabled ();  (* warm up *)
  Alcotest.(check (float 0.)) "disabled: zero minor words" 0.
    (minor_words_during (record_many M.disabled));
  let m = M.create ~domains:4 () in
  record_many m ();
  Alcotest.(check (float 0.)) "enabled: zero minor words" 0.
    (minor_words_during (record_many m))

let test_disabled_metered_instance_allocates_nothing () =
  (* the full instrumented call path of the benchmark's metered pass,
     with recording disabled: still allocation-free *)
  let inst =
    Option.get
      (Harness.Instances.counter_native_metered ~metrics:M.disabled ~n:4
         ~bound:64 Harness.Instances.Farray_counter)
  in
  let run () =
    for _ = 1 to 10_000 do
      inst.Counters.Counter.increment ~pid:0;
      ignore (inst.Counters.Counter.read () : int)
    done
  in
  run ();  (* warm up *)
  Alcotest.(check (float 0.)) "metered farray, disabled: zero minor words" 0.
    (minor_words_during run);
  let reg =
    Option.get
      (Harness.Instances.maxreg_native_metered ~metrics:M.disabled ~n:4
         ~bound:64 Harness.Instances.Algorithm_a)
  in
  let run () =
    for i = 1 to 10_000 do
      reg.Maxreg.Max_register.write_max ~pid:0 i;
      ignore (reg.Maxreg.Max_register.read_max () : int)
    done
  in
  run ();
  Alcotest.(check (float 0.)) "metered algorithm-a, disabled: zero minor words"
    0.
    (minor_words_during run)

let test_histogram_record_allocates_nothing () =
  let h = H.create () in
  let run () =
    for i = 0 to 9_999 do
      H.record h (i * 7)
    done
  in
  run ();
  Alcotest.(check (float 0.)) "record: zero minor words" 0.
    (minor_words_during run)

(* {1 Metrics under domain parallelism} *)

let test_metrics_parallel_single_writer () =
  (* each domain records into its own shard; totals see every increment *)
  let domains = 4 in
  let per_domain = 50_000 in
  let m = M.create ~domains () in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              M.incr m ~domain:d M.Op_update
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no lost updates" (domains * per_domain)
    (M.totals m).M.op_updates

(* {1 JSON round-tripping} *)

let test_json_parse_basic () =
  let doc = J.parse {| {"a": [1, -2.5, true, null, "x\n\"y"], "b": {"c": 3}} |} in
  let a = Option.get (J.member "a" doc) in
  (match Option.get (J.as_list a) with
   | [ one; mhalf; t; n; s ] ->
     Alcotest.(check (option int)) "int" (Some 1) (J.as_int one);
     Alcotest.(check (option (float 0.))) "float" (Some (-2.5)) (J.as_float mhalf);
     Alcotest.(check bool) "bool" true (t = J.Bool true);
     Alcotest.(check bool) "null" true (n = J.Null);
     Alcotest.(check (option string)) "escapes" (Some "x\n\"y") (J.as_string s)
   | _ -> Alcotest.fail "wrong list shape");
  Alcotest.(check (option int)) "nested member" (Some 3)
    (Option.bind (J.member "b" doc) (J.member "c") |> Fun.flip Option.bind J.as_int)

let test_json_parse_errors () =
  List.iter
    (fun s ->
      Alcotest.check_raises ("rejects " ^ s) (J.Parse_error "")
        (fun () ->
          try ignore (J.parse s : J.t)
          with J.Parse_error _ -> raise (J.Parse_error "")))
    [ ""; "{"; "[1,]"; "nul"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

let qcheck_float_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"floats survive print -> parse"
    QCheck.float
    (fun f ->
      QCheck.assume (Float.is_finite f);
      match J.parse (J.to_string (J.Float f)) with
      | J.Float g -> Float.equal g f
      | J.Int i -> Float.equal (float_of_int i) f  (* "2" parses as Int 2 *)
      | _ -> false)

let test_float_repr_shortest () =
  (* representative values where %.6g (the old printer) loses precision *)
  List.iter
    (fun f ->
      Alcotest.(check (float 0.)) (J.float_repr f) f
        (float_of_string (J.float_repr f)))
    [ 0.1; 1. /. 3.; 1e-300; 4.9406564584124654e-324; 1.7976931348623157e308;
      123456.789012345; Float.pi ]

let qcheck_value_roundtrip =
  let gen_value =
    QCheck.Gen.(
      sized (fun n ->
          fix
            (fun self n ->
              if n = 0 then
                oneof
                  [ return J.Null;
                    map (fun b -> J.Bool b) bool;
                    map (fun i -> J.Int i) int;
                    map (fun s -> J.Str s) string_printable ]
              else
                frequency
                  [ (2, map (fun l -> J.List l) (list_size (0 -- 4) (self (n / 2))));
                    ( 2,
                      map
                        (fun ps -> J.Obj ps)
                        (list_size (0 -- 4)
                           (pair string_printable (self (n / 2)))) );
                    (1, self 0) ])
            (min n 4)))
  in
  QCheck.Test.make ~count:500 ~name:"JSON values survive print -> parse"
    (QCheck.make gen_value)
    (fun v ->
      (* object member order and duplicate keys are preserved by both the
         printer and the parser, so structural equality is exact *)
      J.parse (J.to_string v) = v)

(* {1 Chrome trace export} *)

let make_trace () =
  let open Memsim in
  let session = Session.create () in
  let c =
    Harness.Annotate.counter session
      (Harness.Instances.counter_sim session ~n:3 ~bound:64
         Harness.Instances.Farray_counter)
  in
  let sched = Scheduler.create session in
  for pid = 0 to 2 do
    ignore
      (Scheduler.spawn sched (fun () ->
           if pid < 2 then c.increment ~pid else ignore (c.read ())))
  done;
  Scheduler.run_random ~seed:42 ~max_events:10_000 sched;
  Scheduler.finish sched

let test_trace_export_valid_json () =
  let trace = make_trace () in
  let doc = J.parse (Obs.Trace_export.to_string ~name:"unit-test" trace) in
  let events =
    Option.get (Option.bind (J.member "traceEvents" doc) J.as_list)
  in
  Alcotest.(check bool) "has events" true (List.length events > 0);
  let phase e =
    Option.get (Option.bind (J.member "ph" e) J.as_string)
  in
  let ts e = Option.bind (J.member "ts" e) J.as_int in
  (* timestamps monotone over the non-metadata stream *)
  let stamped = List.filter (fun e -> phase e <> "M") events in
  let tss = List.map (fun e -> Option.get (ts e)) stamped in
  let rec monotone = function
    | a :: (b :: _ as tl) -> a <= b && monotone tl
    | _ -> true
  in
  Alcotest.(check bool) "timestamps monotone" true (monotone tss);
  (* every operation Begin has a matching End *)
  let count p = List.length (List.filter (fun e -> phase e = p) events) in
  Alcotest.(check int) "balanced B/E" (count "B") (count "E");
  (* one thread-name record per simulated process *)
  Alcotest.(check int) "thread names" 3 (count "M");
  (* mem events are complete slices with args *)
  List.iter
    (fun e ->
      if phase e = "X" then begin
        Alcotest.(check bool) "X has dur" true (J.member "dur" e <> None);
        Alcotest.(check bool) "X has args" true (J.member "args" e <> None)
      end)
    events

let test_trace_export_file () =
  let trace = make_trace () in
  let path = Filename.temp_file "obs_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Trace_export.to_file path trace;
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool) "file parses" true
        (match J.parse s with J.Obj _ -> true | _ -> false))

(* {1 The even-length median regression (bench satellite)} *)

let test_median () =
  let median = Benchkit.Bench_native.median in
  Alcotest.(check (float 1e-9)) "odd" 2. (median [ 3.; 1.; 2. ]);
  (* even length: average of the two middle elements, not the upper one *)
  Alcotest.(check (float 1e-9)) "even" 2.5 (median [ 4.; 1.; 3.; 2. ]);
  Alcotest.(check (float 1e-9)) "two" 1.5 (median [ 2.; 1. ]);
  (* NaN samples are dropped before sorting, not allowed to poison it *)
  Alcotest.(check (float 1e-9)) "nan dropped" 1.5 (median [ nan; 2.; 1.; nan ]);
  Alcotest.(check bool) "all-nan -> nan" true (Float.is_nan (median [ nan ]));
  Alcotest.(check bool) "empty -> nan" true (Float.is_nan (median []))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [ ( "histogram buckets",
        [ Alcotest.test_case "exact below 32" `Quick test_bucket_bounds_small;
          q qcheck_bucket_contains;
          q qcheck_bucket_error;
          q qcheck_bucket_roundtrip ] );
      ( "histogram",
        [ Alcotest.test_case "exact stats" `Quick test_hist_exact_stats;
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "single sample, wide bucket" `Quick
            test_hist_single_sample;
          Alcotest.test_case "out-of-range/nan p clamps" `Quick
            test_hist_weird_p_clamps;
          Alcotest.test_case "negative clamps" `Quick test_hist_negative_clamps;
          q qcheck_percentile_monotone;
          q qcheck_percentile_in_range;
          q qcheck_percentile_in_range_large;
          q qcheck_merge_commutes;
          q qcheck_merge_is_concat ] );
      ( "metrics",
        [ Alcotest.test_case "totals" `Quick test_metrics_totals;
          Alcotest.test_case "domain folding" `Quick test_metrics_domain_folding;
          Alcotest.test_case "disabled is inert" `Quick test_metrics_disabled;
          Alcotest.test_case "all counters round-trip" `Quick
            test_metrics_totals_roundtrip;
          Alcotest.test_case "parallel single-writer" `Quick
            test_metrics_parallel_single_writer ] );
      ( "zero-allocation guard",
        [ Alcotest.test_case "record sites" `Quick
            test_disabled_record_allocates_nothing;
          Alcotest.test_case "metered instances" `Quick
            test_disabled_metered_instance_allocates_nothing;
          Alcotest.test_case "histogram record" `Quick
            test_histogram_record_allocates_nothing ] );
      ( "json",
        [ Alcotest.test_case "parse basics" `Quick test_json_parse_basic;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "shortest float repr" `Quick
            test_float_repr_shortest;
          q qcheck_float_roundtrip;
          q qcheck_value_roundtrip ] );
      ( "trace export",
        [ Alcotest.test_case "valid, monotone, balanced" `Quick
            test_trace_export_valid_json;
          Alcotest.test_case "to_file" `Quick test_trace_export_file ] );
      ( "bench median",
        [ Alcotest.test_case "even/odd/nan" `Quick test_median ] ) ]
