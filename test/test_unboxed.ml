(* Tests of the unboxed native backend and its specialized implementations:
   the padded heap-block layout, differential equivalence against the boxed
   backend on random operation sequences, zero-allocation assertions via
   minor-heap deltas, and a multi-domain smoke test. *)

(* {1 Padded layout}

   The Obj-built padded cell must be indistinguishable from [Atomic.make]
   to the Atomic primitives, just wider. *)

let test_padded_layout () =
  let plain = Smem.Unboxed_memory.make 42 in
  let padded = Smem.Unboxed_memory.Padded.make 42 in
  Alcotest.(check int) "plain block is one field" 1 (Obj.size (Obj.repr plain));
  Alcotest.(check int)
    "padded block spans a full cache line"
    Smem.Unboxed_memory.padded_words
    (Obj.size (Obj.repr padded));
  Alcotest.(check int)
    "padded readback" 42
    (Smem.Unboxed_memory.Padded.read padded);
  Alcotest.(check bool)
    "padded cas succeeds on current value" true
    (Smem.Unboxed_memory.Padded.cas padded ~expected:42 ~desired:7);
  Alcotest.(check bool)
    "padded cas fails on stale value" false
    (Smem.Unboxed_memory.Padded.cas padded ~expected:42 ~desired:9);
  Alcotest.(check int)
    "padded value after cas" 7
    (Smem.Unboxed_memory.Padded.read padded);
  Smem.Unboxed_memory.Padded.write padded Smem.Unboxed_memory.bot;
  Alcotest.(check int)
    "sentinel round-trips" Smem.Unboxed_memory.bot
    (Smem.Unboxed_memory.Padded.read padded);
  (* the padding must survive a compaction-free GC cycle *)
  Gc.full_major ();
  Alcotest.(check int)
    "padded block intact after full major" Smem.Unboxed_memory.padded_words
    (Obj.size (Obj.repr padded))

(* {1 Differential: boxed vs unboxed on random operation sequences}

   The unboxed specializations claim "same algorithm, different
   representation"; random sequences of operations must be observationally
   identical between the two backends. *)

let bound = 1 lsl 20

let maxreg_pair impl ~n =
  ( Harness.Instances.maxreg_native ~n ~bound impl,
    Option.get (Harness.Instances.maxreg_native_fast ~n ~bound impl) )

let counter_pair impl ~n =
  ( Harness.Instances.counter_native ~n ~bound impl,
    Option.get (Harness.Instances.counter_native_fast ~n ~bound impl) )

(* op = (pid, value): value >= 0 is a write, -1 a read *)
let ops_gen ~n =
  QCheck.make
    ~print:
      QCheck.Print.(list (pair int int))
    (QCheck.Gen.list_size (QCheck.Gen.int_range 1 120)
       (QCheck.Gen.pair (QCheck.Gen.int_range 0 (n - 1))
          (QCheck.Gen.int_range (-1) 40)))

let differential_maxreg impl =
  QCheck.Test.make ~count:200
    ~name:(Harness.Instances.maxreg_name impl ^ ": boxed = unboxed")
    (ops_gen ~n:3)
    (fun ops ->
      let boxed, unboxed = maxreg_pair impl ~n:3 in
      List.for_all
        (fun (pid, v) ->
          if v < 0 then boxed.read_max () = unboxed.read_max ()
          else begin
            boxed.write_max ~pid v;
            unboxed.write_max ~pid v;
            boxed.read_max () = unboxed.read_max ()
          end)
        ops)

let differential_counter impl =
  QCheck.Test.make ~count:200
    ~name:(Harness.Instances.counter_name impl ^ ": boxed = unboxed")
    (ops_gen ~n:3)
    (fun ops ->
      let boxed, unboxed = counter_pair impl ~n:3 in
      List.for_all
        (fun (pid, v) ->
          if v < 0 then boxed.read () = unboxed.read ()
          else begin
            boxed.increment ~pid;
            unboxed.increment ~pid;
            boxed.read () = unboxed.read ()
          end)
        ops)

let differential_snapshot =
  QCheck.Test.make ~count:200 ~name:"farray snapshot: boxed = hybrid"
    (ops_gen ~n:3)
    (fun ops ->
      let boxed =
        Harness.Instances.snapshot_native ~n:3 Harness.Instances.Farray_snapshot
      in
      let hybrid =
        Option.get
          (Harness.Instances.snapshot_native_fast ~n:3
             Harness.Instances.Farray_snapshot)
      in
      List.for_all
        (fun (pid, v) ->
          if v < 0 then boxed.scan () = hybrid.scan ()
          else begin
            boxed.update ~pid v;
            hybrid.update ~pid v;
            boxed.scan () = hybrid.scan ()
          end)
        ops)

(* {1 Cross-implementation differential}

   Different algorithms for the same abstract object must agree
   observationally on every sequential operation sequence: the hybrid
   f-array snapshot against the double-collect baseline, and the AAC
   counter against the naive one.  This is independent of the
   boxed-vs-unboxed pairs above — here the *algorithms* differ and the
   shared sequential semantics is what's under test. *)

let differential_snapshot_impls =
  QCheck.Test.make ~count:200 ~name:"hybrid farray snapshot = double-collect"
    (ops_gen ~n:3)
    (fun ops ->
      let hybrid =
        Option.get
          (Harness.Instances.snapshot_native_fast ~n:3
             Harness.Instances.Farray_snapshot)
      in
      let baseline =
        Harness.Instances.snapshot_native ~n:3 Harness.Instances.Double_collect
      in
      List.for_all
        (fun (pid, v) ->
          if v < 0 then hybrid.scan () = baseline.scan ()
          else begin
            hybrid.update ~pid v;
            baseline.update ~pid v;
            hybrid.scan () = baseline.scan ()
          end)
        ops)

let differential_counter_impls =
  (* counts stay under 120 (the ops_gen list cap), so a small bound keeps
     the AAC register tree cheap to build per QCheck case *)
  let small_bound = 256 in
  QCheck.Test.make ~count:200 ~name:"aac counter = naive counter"
    (ops_gen ~n:3)
    (fun ops ->
      let aac =
        Harness.Instances.counter_native ~n:3 ~bound:small_bound
          Harness.Instances.Aac_counter
      in
      let naive =
        Harness.Instances.counter_native ~n:3 ~bound:small_bound
          Harness.Instances.Naive_counter
      in
      List.for_all
        (fun (pid, v) ->
          if v < 0 then aac.read () = naive.read ()
          else begin
            aac.increment ~pid;
            naive.increment ~pid;
            aac.read () = naive.read ()
          end)
        ops)

(* {1 Zero allocation}

   [Gc.minor_words] deltas over many operations: the unboxed hot paths
   must not allocate per operation.  The slack absorbs the measurement's
   own float boxing; anything per-op would show up as >= 2 words * ops. *)

let minor_delta f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let ops = 10_000
let slack = 256.0

let check_alloc_free name f =
  ignore (minor_delta f : float) (* warm up: force any one-time allocation *);
  let delta = minor_delta f in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %d ops allocate <= %.0f words (got %.0f)" name ops
       slack delta)
    true (delta <= slack)

let test_alloc_free_maxregs () =
  let module C = Maxreg.Cas_maxreg.Unboxed in
  let reg = C.create () in
  let v0 = ref 0 in
  check_alloc_free "cas-loop write_max" (fun () ->
      let base = !v0 in
      for i = 1 to ops do
        C.write_max reg ~pid:0 (base + i)
      done;
      v0 := base + ops);
  check_alloc_free "cas-loop read_max" (fun () ->
      for _ = 1 to ops do
        ignore (C.read_max reg : int)
      done);
  let module A = Maxreg.Algorithm_a.Unboxed in
  let areg = A.create ~n:4 () in
  let a0 = ref 0 in
  check_alloc_free "algorithm-a write_max" (fun () ->
      let base = !a0 in
      for i = 1 to ops do
        A.write_max areg ~pid:0 (base + i)
      done;
      a0 := base + ops);
  check_alloc_free "algorithm-a read_max" (fun () ->
      for _ = 1 to ops do
        ignore (A.read_max areg : int)
      done);
  (* B1: steady-state only — materialize the spine first, then re-run the
     same values (lazy node construction is allowed to allocate) *)
  let module B = Maxreg.B1_maxreg.Unboxed in
  let breg = B.create () in
  for v = 0 to 200 do
    B.write_max breg ~pid:0 v
  done;
  check_alloc_free "aac-unbounded-b1 steady-state" (fun () ->
      for _ = 1 to ops / 10 do
        for v = 190 to 200 do
          B.write_max breg ~pid:0 v
        done;
        ignore (B.read_max breg : int)
      done)

let test_alloc_free_counters () =
  let module F = Counters.Farray_counter.Unboxed in
  let c = F.create ~n:4 () in
  check_alloc_free "farray increment" (fun () ->
      for _ = 1 to ops do
        F.increment c ~pid:0
      done);
  check_alloc_free "farray read" (fun () ->
      for _ = 1 to ops do
        ignore (F.read c : int)
      done);
  let module N = Counters.Naive_counter.Unboxed in
  let nc = N.create ~n:4 () in
  check_alloc_free "naive increment" (fun () ->
      for _ = 1 to ops do
        N.increment nc ~pid:0
      done);
  check_alloc_free "naive read" (fun () ->
      for _ = 1 to ops do
        ignore (N.read nc : int)
      done)

(* {1 Multi-domain smoke}

   Real parallelism over the unboxed structures: totals exact, maxima
   monotone.  [domains_used] caps at 4 — on smaller hosts domains
   time-share, which still exercises cross-domain visibility. *)

let domains_used = 4

let in_domains k f =
  let ds = List.init k (fun i -> Domain.spawn (fun () -> f i)) in
  List.iter Domain.join ds

let test_parallel_counter_exact () =
  let per_domain = 5_000 in
  let module F = Counters.Farray_counter.Unboxed in
  let c = F.create ~n:domains_used () in
  in_domains domains_used (fun i ->
      for _ = 1 to per_domain do
        F.increment c ~pid:i
      done);
  Alcotest.(check int) "farray total exact" (domains_used * per_domain)
    (F.read c);
  let module N = Counters.Naive_counter.Unboxed in
  let nc = N.create ~n:domains_used () in
  in_domains domains_used (fun i ->
      for _ = 1 to per_domain do
        N.increment nc ~pid:i
      done);
  Alcotest.(check int) "naive total exact" (domains_used * per_domain)
    (N.read nc)

let test_parallel_maxreg_monotone () =
  let per_domain = 3_000 in
  let module A = Maxreg.Algorithm_a.Unboxed in
  let reg = A.create ~n:domains_used () in
  let monotone = Atomic.make true in
  in_domains domains_used (fun i ->
      if i = 0 then begin
        let last = ref 0 in
        for _ = 1 to per_domain * 3 do
          let v = A.read_max reg in
          if v < !last then Atomic.set monotone false;
          last := v
        done
      end
      else
        for v = 1 to per_domain do
          A.write_max reg ~pid:i ((v * domains_used) + i)
        done);
  Alcotest.(check bool) "algorithm-a reads monotone" true
    (Atomic.get monotone);
  Alcotest.(check int) "algorithm-a final maximum"
    ((per_domain * domains_used) + (domains_used - 1))
    (A.read_max reg)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "unboxed"
    [ ("layout", [ Alcotest.test_case "padded blocks" `Quick test_padded_layout ]);
      ( "differential",
        qsuite
          [ differential_maxreg Harness.Instances.Algorithm_a;
            differential_maxreg Harness.Instances.Algorithm_a_literal;
            differential_maxreg Harness.Instances.B1_maxreg;
            differential_maxreg Harness.Instances.Cas_maxreg;
            differential_counter Harness.Instances.Farray_counter;
            differential_counter Harness.Instances.Naive_counter;
            differential_counter
              (Harness.Instances.Snapshot_counter
                 Harness.Instances.Farray_snapshot);
            differential_snapshot ] );
      ( "cross-implementation",
        qsuite [ differential_snapshot_impls; differential_counter_impls ] );
      ( "allocation",
        [ Alcotest.test_case "max registers allocate nothing" `Quick
            test_alloc_free_maxregs;
          Alcotest.test_case "counters allocate nothing" `Quick
            test_alloc_free_counters ] );
      ( "parallel",
        [ Alcotest.test_case "counters exact under 4 domains" `Quick
            test_parallel_counter_exact;
          Alcotest.test_case "max register monotone under 4 domains" `Quick
            test_parallel_maxreg_monotone ] ) ]
